// Tests for phase estimation: dense-unitary construction, the outcome
// kernel, and the three-strategy agreement contract (simulation ==
// repeated squaring == eigendecomposition).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>

#include "circuit/builders.hpp"
#include "emu/qpe.hpp"
#include "linalg/gemm.hpp"
#include "sim/simulator.hpp"

namespace qc::emu {
namespace {

using circuit::Circuit;
using linalg::Matrix;
using sim::StateVector;

TEST(BuildUnitary, MatchesReferenceKroneckerConstruction) {
  Rng rng(1);
  for (const qubit_t n : {1u, 2u, 4u, 6u}) {
    const Circuit c = circuit::random_circuit(n, 8 * n, rng);
    const Matrix fast = build_unitary(c);
    const Matrix ref = c.to_matrix_reference();
    EXPECT_LT(fast.max_abs_diff(ref), 1e-11) << "n=" << n;
  }
}

TEST(BuildUnitary, TfimIsUnitary) {
  const Matrix u = build_unitary(circuit::tfim_trotter_step(6, 0.2));
  EXPECT_LT(u.unitarity_error(), 1e-12);
}

TEST(OutcomeKernel, SumsToOne) {
  for (const double theta : {0.0, 0.3, 1.7, 5.9}) {
    for (const unsigned b : {2u, 4u, 6u}) {
      double total = 0;
      for (index_t m = 0; m < (index_t{1} << b); ++m)
        total += qpe_outcome_probability(theta, m, b);
      EXPECT_NEAR(total, 1.0, 1e-10) << "theta=" << theta << " b=" << b;
    }
  }
}

TEST(OutcomeKernel, ExactPhaseIsDeterministic) {
  // theta = 2*pi*m/2^b is measured as m with probability 1.
  const unsigned b = 5;
  const index_t m = 11;
  const double theta = 2.0 * std::numbers::pi * 11.0 / 32.0;
  EXPECT_NEAR(qpe_outcome_probability(theta, m, b), 1.0, 1e-12);
  EXPECT_NEAR(qpe_outcome_probability(theta, m + 1, b), 0.0, 1e-12);
}

TEST(OutcomeKernel, OffGridPhaseConcentratesNearby) {
  const unsigned b = 6;
  const double theta = 2.0 * std::numbers::pi * (10.4 / 64.0);
  // Best outcomes are m = 10 and m = 11; together they carry most mass.
  const double p10 = qpe_outcome_probability(theta, 10, b);
  const double p11 = qpe_outcome_probability(theta, 11, b);
  EXPECT_GT(p10 + p11, 0.8);
  EXPECT_GT(p10, p11);  // 10.4 is closer to 10
}

/// Diagonal test unitary with a known eigenphase on |1...1>.
Circuit phase_oracle_circuit(qubit_t n, double theta) {
  Circuit c(n);
  // R(theta) on qubit 0 controlled on all others: phase e^{i theta} on
  // the all-ones state only.
  circuit::Gate g = circuit::make_gate(circuit::GateKind::Phase, 0, theta);
  for (qubit_t q = 1; q < n; ++q) g.controls.push_back(q);
  c.append(g);
  return c;
}

TEST(Qpe, KnownEigenphaseAllStrategies) {
  const qubit_t n = 3;
  const unsigned b = 5;
  const double theta = 2.0 * std::numbers::pi * 13.0 / 32.0;  // exactly representable
  const Circuit c = phase_oracle_circuit(n, theta);
  StateVector eigenstate(n);
  eigenstate.set_basis(dim(n) - 1);  // |111>

  for (const QpeStrategy strategy :
       {QpeStrategy::SimulateCircuit, QpeStrategy::RepeatedSquaring,
        QpeStrategy::Eigendecomposition}) {
    QpeOptions opt;
    opt.bits = b;
    opt.strategy = strategy;
    const QpeResult r = phase_estimation(c, eigenstate, opt);
    EXPECT_EQ(r.most_likely, 13u) << r.strategy_used;
    EXPECT_NEAR(r.distribution[13], 1.0, 1e-9) << r.strategy_used;
    EXPECT_NEAR(r.phase_estimate, theta, 1e-12) << r.strategy_used;
  }
}

TEST(Qpe, StrategiesAgreeOnTfimEigenstate) {
  // Use an eigenvector of the TFIM Trotter step (from our eigensolver)
  // as input; all three strategies must yield the same distribution.
  const qubit_t n = 4;
  const unsigned b = 6;
  const Circuit c = circuit::tfim_trotter_step(n, 0.13);
  const Matrix u = build_unitary(c);
  const linalg::EigResult eig = linalg::eig(u);

  StateVector input(n);
  for (index_t i = 0; i < dim(n); ++i) input[i] = eig.vectors(i, 2);

  QpeOptions opt;
  opt.bits = b;
  opt.strategy = QpeStrategy::SimulateCircuit;
  const QpeResult sim_r = phase_estimation(c, input, opt);
  opt.strategy = QpeStrategy::RepeatedSquaring;
  const QpeResult rs_r = phase_estimation(c, input, opt);
  opt.strategy = QpeStrategy::Eigendecomposition;
  const QpeResult eig_r = phase_estimation(c, input, opt);

  for (index_t m = 0; m < (index_t{1} << b); ++m) {
    EXPECT_NEAR(rs_r.distribution[m], sim_r.distribution[m], 1e-6) << "m=" << m;
    EXPECT_NEAR(eig_r.distribution[m], sim_r.distribution[m], 1e-6) << "m=" << m;
  }
  EXPECT_EQ(rs_r.most_likely, sim_r.most_likely);
  EXPECT_EQ(eig_r.most_likely, sim_r.most_likely);
}

TEST(Qpe, StrassenVariantMatchesGemm) {
  const qubit_t n = 3;
  const Circuit c = circuit::tfim_trotter_step(n, 0.21);
  const Matrix u = build_unitary(c);
  const linalg::EigResult eig = linalg::eig(u);
  StateVector input(n);
  for (index_t i = 0; i < dim(n); ++i) input[i] = eig.vectors(i, 0);

  QpeOptions opt;
  opt.bits = 5;
  opt.strategy = QpeStrategy::RepeatedSquaring;
  const QpeResult plain = phase_estimation(c, input, opt);
  opt.use_strassen = true;
  const QpeResult fancy = phase_estimation(c, input, opt);
  for (index_t m = 0; m < 32; ++m)
    EXPECT_NEAR(plain.distribution[m], fancy.distribution[m], 1e-8);
}

TEST(Qpe, EigendecompositionHandlesSuperpositionInput) {
  // Non-eigenstate input: the distribution is a mixture over eigenphases.
  // Eigendecomposition and full circuit simulation must agree.
  const qubit_t n = 3;
  const unsigned b = 5;
  const Circuit c = circuit::tfim_trotter_step(n, 0.4);
  StateVector input(n);
  Rng rng(5);
  input.randomize(rng);

  QpeOptions opt;
  opt.bits = b;
  opt.strategy = QpeStrategy::SimulateCircuit;
  const QpeResult sim_r = phase_estimation(c, input, opt);
  opt.strategy = QpeStrategy::Eigendecomposition;
  const QpeResult eig_r = phase_estimation(c, input, opt);
  for (index_t m = 0; m < (index_t{1} << b); ++m)
    EXPECT_NEAR(eig_r.distribution[m], sim_r.distribution[m], 1e-6) << "m=" << m;
}

TEST(Qpe, DistributionsAreNormalized) {
  const Circuit c = circuit::tfim_trotter_step(3, 0.3);
  StateVector input(3);
  Rng rng(6);
  input.randomize(rng);
  for (const QpeStrategy s : {QpeStrategy::SimulateCircuit, QpeStrategy::Eigendecomposition}) {
    QpeOptions opt;
    opt.bits = 4;
    opt.strategy = s;
    const QpeResult r = phase_estimation(c, input, opt);
    double total = 0;
    for (double p : r.distribution) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9) << r.strategy_used;
  }
}

TEST(Qpe, TimingFieldsPopulated) {
  const Circuit c = circuit::tfim_trotter_step(4, 0.1);
  StateVector input(4);
  QpeOptions opt;
  opt.bits = 3;
  opt.strategy = QpeStrategy::RepeatedSquaring;
  const QpeResult rs = phase_estimation(c, input, opt);
  EXPECT_GT(rs.seconds_construct, 0.0);
  EXPECT_GT(rs.seconds_power, 0.0);
  opt.strategy = QpeStrategy::Eigendecomposition;
  const QpeResult er = phase_estimation(c, input, opt);
  EXPECT_GT(er.seconds_eig, 0.0);
  opt.strategy = QpeStrategy::SimulateCircuit;
  const QpeResult sr = phase_estimation(c, input, opt);
  EXPECT_GT(sr.seconds_simulate, 0.0);
}

TEST(IterativeQpe, ExactPhaseIsDeterministic) {
  // Exactly representable eigenphase: every round's measurement is
  // deterministic and the bits assemble to the coherent-QPE outcome.
  const qubit_t n = 3;
  const unsigned b = 6;
  const double theta = 2.0 * std::numbers::pi * 37.0 / 64.0;
  const Circuit c = phase_oracle_circuit(n, theta);
  StateVector eigenstate(n);
  eigenstate.set_basis(dim(n) - 1);
  Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    const IterativeQpeResult r = iterative_phase_estimation(c, eigenstate, b, rng);
    EXPECT_EQ(r.outcome, 37u);
    EXPECT_NEAR(r.phase_estimate, theta, 1e-12);
  }
}

TEST(IterativeQpe, MatchesCoherentOnTfimEigenstate) {
  const qubit_t n = 3;
  const unsigned b = 5;
  const Circuit c = circuit::tfim_trotter_step(n, 0.15);
  const Matrix u = build_unitary(c);
  const linalg::EigResult eig = linalg::eig(u);
  StateVector input(n);
  for (index_t i = 0; i < dim(n); ++i) input[i] = eig.vectors(i, 3);

  QpeOptions opt;
  opt.bits = b;
  opt.strategy = QpeStrategy::Eigendecomposition;
  const QpeResult coherent = phase_estimation(c, input, opt);

  // Iterative QPE samples the same distribution for eigenvector inputs:
  // over many trials the modal outcome must match.
  Rng rng(7);
  std::vector<int> histogram(std::size_t{1} << b, 0);
  for (int trial = 0; trial < 40; ++trial)
    ++histogram[iterative_phase_estimation(c, input, b, rng).outcome];
  const index_t mode = static_cast<index_t>(
      std::max_element(histogram.begin(), histogram.end()) - histogram.begin());
  EXPECT_EQ(mode, coherent.most_likely);
}

TEST(IterativeQpe, InputStateIsNotModified) {
  const qubit_t n = 3;
  const Circuit c = circuit::tfim_trotter_step(n, 0.15);
  StateVector input(n);
  Rng seed(3);
  input.randomize(seed);
  StateVector copy(n);
  std::copy(input.amplitudes().begin(), input.amplitudes().end(),
            copy.amplitudes().begin());
  Rng rng(4);
  (void)iterative_phase_estimation(c, input, 4, rng);
  EXPECT_EQ(input.max_abs_diff(copy), 0.0);
}

TEST(QpeStrategySelection, MeasuredCostsArePositiveAndOrdered) {
  const Circuit c = circuit::tfim_trotter_step(5, 0.1);
  const models::QpeCosts costs = measure_qpe_costs(c);
  EXPECT_GT(costs.t_apply_u, 0.0);
  EXPECT_GT(costs.t_construct, 0.0);
  EXPECT_GT(costs.t_gemm, 0.0);
  EXPECT_GT(costs.t_eig, 0.0);
  // One gate-level sweep is far cheaper than building the dense matrix.
  EXPECT_LT(costs.t_apply_u, costs.t_construct);
}

TEST(QpeStrategySelection, ScalingFollowsComplexityExponents) {
  models::QpeCosts c{1e-4, 1e-3, 1e-2, 1e-1};
  const models::QpeCosts up = scale_qpe_costs(c, 8, 10, 29, 37);
  EXPECT_NEAR(up.t_apply_u, 1e-4 * 4.0 * 37.0 / 29.0, 1e-12);
  EXPECT_NEAR(up.t_construct, 1e-3 * 16.0 * 37.0 / 29.0, 1e-12);
  EXPECT_NEAR(up.t_gemm, 1e-2 * 64.0, 1e-12);
  EXPECT_NEAR(up.t_eig, 1e-1 * 64.0, 1e-12);
  EXPECT_THROW(scale_qpe_costs(c, 8, 7, 29, 25), std::invalid_argument);
}

TEST(QpeStrategySelection, ChoosesByPredictedTime) {
  // Paper Table 2 n = 8 column: simulation below 6 bits, repeated
  // squaring from 6, eigendecomposition once (2^b-1)*t_apply exceeds
  // construct + t_eig AND t_eig beats b squarings.
  models::QpeCosts c{1.44e-4, 7.60e-4, 8.39e-4, 9.60e-2};
  EXPECT_EQ(choose_qpe_strategy(c, 3), QpeStrategy::SimulateCircuit);
  EXPECT_EQ(choose_qpe_strategy(c, 5), QpeStrategy::SimulateCircuit);
  EXPECT_EQ(choose_qpe_strategy(c, 6), QpeStrategy::RepeatedSquaring);
  EXPECT_EQ(choose_qpe_strategy(c, 20), QpeStrategy::RepeatedSquaring);
  // With a cheap eigensolver relative to squarings, eig wins at high b.
  models::QpeCosts c2{1.44e-4, 7.60e-4, 9.60e-2, 8.39e-4};
  EXPECT_EQ(choose_qpe_strategy(c2, 20), QpeStrategy::Eigendecomposition);
}

TEST(Qpe, RejectsBadArguments) {
  const Circuit c = circuit::tfim_trotter_step(3, 0.1);
  StateVector wrong(4);
  QpeOptions opt;
  EXPECT_THROW(phase_estimation(c, wrong, opt), std::invalid_argument);
  StateVector ok(3);
  opt.bits = 0;
  EXPECT_THROW(phase_estimation(c, ok, opt), std::invalid_argument);
}

}  // namespace
}  // namespace qc::emu
