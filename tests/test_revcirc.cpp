// Tests for the reversible arithmetic circuits: exhaustive BitVm
// verification of the adder, controlled adder, multiplier and divider,
// ancilla cleanliness, and state-vector superposition checks.
#include <gtest/gtest.h>

#include "circuit/builders.hpp"
#include "revcirc/arith.hpp"
#include "revcirc/bit_vm.hpp"
#include "sim/simulator.hpp"

namespace qc::revcirc {
namespace {

using circuit::Circuit;

index_t pack(std::initializer_list<std::pair<index_t, std::pair<qubit_t, qubit_t>>> fields) {
  // Each entry: value, (offset, width).
  index_t s = 0;
  for (const auto& [v, ow] : fields) s = bits::with_field(s, ow.first, ow.second, v);
  return s;
}

class AdderWidths : public ::testing::TestWithParam<qubit_t> {};

TEST_P(AdderWidths, ExhaustiveAddition) {
  const qubit_t w = GetParam();
  // Layout: a = [0,w), b = [w,2w), carry anc = 2w, carry out = 2w+1.
  Circuit c(2 * w + 2);
  cuccaro_add(c, make_reg(0, w), make_reg(w, w), 2 * w, 2 * w + 1);
  ASSERT_TRUE(BitVm::is_classical(c));
  const index_t lim = dim(w);
  for (index_t a = 0; a < lim; ++a) {
    for (index_t b = 0; b < lim; ++b) {
      const index_t in = pack({{a, {0, w}}, {b, {w, w}}});
      const index_t out = BitVm::run(c, in);
      EXPECT_EQ(bits::field(out, w, w), (a + b) & (lim - 1)) << "a=" << a << " b=" << b;
      EXPECT_EQ(bits::field(out, 0, w), a) << "input register must be restored";
      EXPECT_EQ(bits::get(out, 2 * w), 0u) << "carry ancilla must be clean";
      EXPECT_EQ(bits::get(out, 2 * w + 1), (a + b) >> w) << "carry out";
    }
  }
}

TEST_P(AdderWidths, ExhaustiveControlledAddition) {
  const qubit_t w = GetParam();
  // Layout: a, b, carry anc = 2w, control = 2w+1.
  Circuit c(2 * w + 2);
  cuccaro_add(c, make_reg(0, w), make_reg(w, w), 2 * w, std::nullopt,
              /*control=*/2 * w + 1);
  const index_t lim = dim(w);
  for (index_t ctl = 0; ctl < 2; ++ctl) {
    for (index_t a = 0; a < lim; ++a) {
      for (index_t b = 0; b < lim; ++b) {
        index_t in = pack({{a, {0, w}}, {b, {w, w}}});
        if (ctl) in = bits::set(in, 2 * w + 1);
        const index_t out = BitVm::run(c, in);
        const index_t expect_b = ctl ? (a + b) & (lim - 1) : b;
        EXPECT_EQ(bits::field(out, w, w), expect_b) << "ctl=" << ctl;
        EXPECT_EQ(bits::field(out, 0, w), a);
        EXPECT_EQ(bits::get(out, 2 * w), 0u);
        EXPECT_EQ(bits::get(out, 2 * w + 1), ctl) << "control must be untouched";
      }
    }
  }
}

TEST_P(AdderWidths, ExhaustiveSubtractionWithBorrow) {
  const qubit_t w = GetParam();
  Circuit c(2 * w + 2);
  cuccaro_sub(c, make_reg(0, w), make_reg(w, w), 2 * w, 2 * w + 1);
  const index_t lim = dim(w);
  for (index_t a = 0; a < lim; ++a) {
    for (index_t b = 0; b < lim; ++b) {
      const index_t in = pack({{a, {0, w}}, {b, {w, w}}});
      const index_t out = BitVm::run(c, in);
      EXPECT_EQ(bits::field(out, w, w), (b - a) & (lim - 1));
      EXPECT_EQ(bits::field(out, 0, w), a);
      EXPECT_EQ(bits::get(out, 2 * w + 1), b < a ? 1u : 0u) << "borrow flag";
      EXPECT_EQ(bits::get(out, 2 * w), 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderWidths, ::testing::Values(1, 2, 3, 4, 5, 6));

class MultiplierWidths : public ::testing::TestWithParam<qubit_t> {};

TEST_P(MultiplierWidths, ExhaustiveOrRandomMultiplication) {
  const qubit_t m = GetParam();
  const Circuit c = multiplier_circuit(m);
  const MulLayout l = MulLayout::make(m);
  ASSERT_TRUE(BitVm::is_classical(c));
  const index_t lim = dim(m);
  Rng rng(m);
  const bool exhaustive = m <= 5;
  const index_t trials = exhaustive ? lim * lim : 4000;
  for (index_t t = 0; t < trials; ++t) {
    const index_t a = exhaustive ? t / lim : rng.uniform_u64(lim);
    const index_t b = exhaustive ? t % lim : rng.uniform_u64(lim);
    const index_t c0 = exhaustive ? 0 : rng.uniform_u64(lim);  // c need not start at 0
    const index_t in = pack({{a, {0, m}}, {b, {m, m}}, {c0, {2 * m, m}}});
    const index_t out = BitVm::run(c, in);
    EXPECT_EQ(bits::field(out, 2 * m, m), (c0 + a * b) & (lim - 1))
        << "a=" << a << " b=" << b << " c0=" << c0;
    EXPECT_EQ(bits::field(out, 0, m), a);
    EXPECT_EQ(bits::field(out, m, m), b);
    EXPECT_EQ(bits::get(out, l.carry), 0u) << "carry ancilla clean";
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MultiplierWidths, ::testing::Values(1, 2, 3, 4, 5, 8, 12, 16));

class DividerWidths : public ::testing::TestWithParam<qubit_t> {};

TEST_P(DividerWidths, ExhaustiveOrRandomDivision) {
  const qubit_t m = GetParam();
  const Circuit c = divider_circuit(m);
  const DivLayout l = DivLayout::make(m);
  ASSERT_TRUE(BitVm::is_classical(c));
  const index_t lim = dim(m);
  Rng rng(m + 50);
  const bool exhaustive = m <= 5;
  const index_t trials = exhaustive ? lim * lim : 4000;
  for (index_t t = 0; t < trials; ++t) {
    const index_t a = exhaustive ? t / lim : rng.uniform_u64(lim);
    const index_t b = exhaustive ? t % lim : rng.uniform_u64(lim);
    const index_t in = pack({{a, {0, m}}, {b, {2 * m + 1, m}}});
    const index_t out = BitVm::run(c, in);
    const index_t expect_q = b == 0 ? lim - 1 : a / b;
    const index_t expect_r = b == 0 ? a : a % b;
    EXPECT_EQ(bits::field(out, 3 * m + 1, m), expect_q) << "a=" << a << " b=" << b;
    EXPECT_EQ(bits::field(out, 0, m), expect_r) << "a=" << a << " b=" << b;
    EXPECT_EQ(bits::field(out, m, m + 1), 0u) << "shift window restored";
    EXPECT_EQ(bits::field(out, 2 * m + 1, m), b) << "divisor intact";
    EXPECT_EQ(bits::get(out, l.b_pad), 0u);
    EXPECT_EQ(bits::get(out, l.borrow), 0u) << "borrow clean";
    EXPECT_EQ(bits::get(out, l.carry), 0u) << "carry clean";
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, DividerWidths, ::testing::Values(1, 2, 3, 4, 5, 7, 10));

TEST(Multiplier, GateCountGrowsQuadratically) {
  // Shift-and-add: sum of 6(m-i) MAJ/UMA gates, ~3m^2 total.
  const std::size_t g4 = multiplier_circuit(4).size();
  const std::size_t g8 = multiplier_circuit(8).size();
  EXPECT_GT(g8, 3u * g4);
  EXPECT_LT(g8, 5u * g4);
}

TEST(Divider, UsesOnlyClassicalGates) {
  const Circuit c = divider_circuit(3);
  EXPECT_TRUE(BitVm::is_classical(c));
  for (const auto& g : c.gates()) EXPECT_LE(g.controls.size(), 2u) << g.to_string();
}

TEST(BitVm, RejectsNonClassicalGate) {
  Circuit c(2);
  c.h(0);
  EXPECT_THROW(BitVm::run(c, 0), std::invalid_argument);
  EXPECT_FALSE(BitVm::is_classical(c));
}

TEST(BitVm, SwapAndControls) {
  Circuit c(3);
  c.swap(0, 2);
  EXPECT_EQ(BitVm::run(c, 0b001), 0b100u);
  EXPECT_EQ(BitVm::run(c, 0b101), 0b101u);
  Circuit t(3);
  t.toffoli(0, 1, 2);
  EXPECT_EQ(BitVm::run(t, 0b011), 0b111u);
  EXPECT_EQ(BitVm::run(t, 0b001), 0b001u);
}

TEST(BitVm, AgreesWithStateVectorOnRandomClassicalCircuits) {
  // The BitVm and the amplitude-level simulator must realize the same
  // permutation on basis states.
  Rng rng(77);
  const qubit_t n = 6;
  for (int trial = 0; trial < 5; ++trial) {
    const Circuit c = circuit::random_classical_circuit(n, 40, rng);
    for (int s = 0; s < 10; ++s) {
      const index_t input = rng.uniform_u64(dim(n));
      sim::StateVector sv(n);
      sv.set_basis(input);
      sim::HpcSimulator().run(sv, c);
      const index_t expected = BitVm::run(c, input);
      EXPECT_NEAR(std::abs(sv[expected]), 1.0, 1e-12);
    }
  }
}

TEST(Adder, SuperpositionInputsAddCorrectly) {
  // Run the adder on a uniform superposition of the `a` register and
  // verify the entangled output pairs (a, a+b0) appear with equal weight.
  const qubit_t w = 3;
  Circuit prep(2 * w + 2);
  for (qubit_t q = 0; q < w; ++q) prep.h(q);  // superpose a
  // b starts at 5.
  const index_t b0 = 5;
  for (qubit_t q = 0; q < w; ++q)
    if (bits::test(b0, q)) prep.x(w + q);
  cuccaro_add(prep, make_reg(0, w), make_reg(w, w), 2 * w, std::nullopt);
  sim::StateVector sv(2 * w + 2);
  sim::HpcSimulator().run(sv, prep);
  const double amp = 1.0 / std::sqrt(8.0);
  for (index_t a = 0; a < 8; ++a) {
    const index_t idx = a | (((a + b0) & 7) << w);
    EXPECT_NEAR(std::abs(sv[idx]), amp, 1e-12) << "a=" << a;
  }
}

}  // namespace
}  // namespace qc::revcirc
