// Tests for the shared inverse-CDF sampler: prefix-sum correctness
// (serial and parallel paths), the zero-probability-outcome regression
// the three divergent copies used to disagree on, and the StateVector
// sampling path built on it.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "sim/sampling.hpp"
#include "sim/state_vector.hpp"

namespace qc::sim {
namespace {

TEST(SampleCdf, PrefixSumMatchesManualScan) {
  const std::vector<double> w{0.1, 0.4, 0.0, 0.5, 0.25};
  const SampleCdf cdf = SampleCdf::from_weights(w);
  EXPECT_EQ(cdf.size(), w.size());
  EXPECT_NEAR(cdf.total(), 1.25, 1e-15);
  EXPECT_EQ(cdf.sample_scaled(0.05), 0u);
  EXPECT_EQ(cdf.sample_scaled(0.1), 1u);   // boundary goes to the next outcome
  EXPECT_EQ(cdf.sample_scaled(0.49), 1u);
  EXPECT_EQ(cdf.sample_scaled(0.51), 3u);  // skips the zero-weight outcome 2
  EXPECT_EQ(cdf.sample_scaled(1.1), 4u);
}

TEST(SampleCdf, ParallelPrefixMatchesSerialReference) {
  // Large enough to trigger the parallel slab path; compare against a
  // serial accumulation at matching summation order.
  const std::size_t size = std::size_t{1} << 17;
  Rng rng(42);
  std::vector<double> w(size);
  for (double& x : w) x = rng.uniform();
  const SampleCdf cdf = SampleCdf::from_weights(w);
  // Spot-check inverse mapping at many quantiles instead of exposing the
  // internal array: outcome i must satisfy cum(i-1) <= u < cum(i).
  double acc = 0;
  std::vector<double> ref(size);
  for (std::size_t i = 0; i < size; ++i) {
    acc += w[i];
    ref[i] = acc;
  }
  EXPECT_NEAR(cdf.total(), acc, 1e-9 * acc);
  for (int q = 0; q < 100; ++q) {
    const double u = (q + 0.5) / 100.0 * acc;
    const index_t i = cdf.sample_scaled(u);
    ASSERT_LT(i, size);
    EXPECT_LT(u, ref[i] + 1e-9 * acc);
    if (i > 0) {
      EXPECT_GE(u, ref[i - 1] - 1e-9 * acc);
    }
  }
}

TEST(SampleCdf, FloatingPointLeftoverFallsBackToLastSupportedOutcome) {
  // Regression: the old StateVector::sample returned size() - 1 when the
  // draw exceeded the accumulated sum (easy when the caller's total is
  // computed in a different summation order) — even when that trailing
  // amplitude had zero probability. The shared fallback must scan back
  // to the last outcome with support.
  const std::vector<double> w{0.25, 0.75, 0.0, 0.0, 0.0};
  const SampleCdf cdf = SampleCdf::from_weights(w);
  EXPECT_EQ(cdf.sample_scaled(cdf.total()), 1u);
  EXPECT_EQ(cdf.sample_scaled(cdf.total() + 1.0), 1u);
  // sample(u01): adversarial u01 = 1 - eps scaled up by rounding.
  EXPECT_EQ(cdf.sample(std::nextafter(1.0, 0.0)), 1u);
}

TEST(SampleCdf, ThrowsOnEmptySupport) {
  const std::vector<double> w{0.0, 0.0};
  const SampleCdf cdf = SampleCdf::from_weights(w);
  EXPECT_THROW((void)cdf.sample_scaled(0.0), std::runtime_error);
}

TEST(SampleCdf, FromAmplitudesUsesNormWeights) {
  const std::vector<complex_t> a{{0.0, 0.5}, {0.5, 0.0}, {0.0, 0.0}, {0.5, 0.5}};
  const SampleCdf cdf = SampleCdf::from_amplitudes<double>(a);
  EXPECT_NEAR(cdf.total(), 1.0, 1e-15);
  EXPECT_EQ(cdf.sample_scaled(0.1), 0u);
  EXPECT_EQ(cdf.sample_scaled(0.3), 1u);
  EXPECT_EQ(cdf.sample_scaled(0.6), 3u);  // zero amplitude 2 never selected
  EXPECT_EQ(cdf.sample_scaled(1.0), 3u);
}

TEST(StateVectorSample, NeverLandsOnZeroAmplitudeTail) {
  // State with support only on the first 4 basis states and an all-zero
  // tail; across many seeds no draw may land in the tail (the old
  // fallback could return the last index).
  StateVector sv(10);
  sv.set_basis(0);
  auto a = sv.amplitudes();
  a[0] = {0.5, 0.0};
  a[1] = {0.0, 0.5};
  a[2] = {0.5, 0.0};
  a[3] = {0.0, 0.5};
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed);
    EXPECT_LT(sv.sample(rng), index_t{4}) << "seed " << seed;
  }
}

TEST(StateVectorSample, MatchesDistributionStatistically) {
  StateVector sv(3);
  sv.set_basis(0);
  auto a = sv.amplitudes();
  a[0] = {std::sqrt(0.5), 0.0};
  a[5] = {0.0, std::sqrt(0.5)};
  Rng rng(7);
  std::size_t hits5 = 0;
  const std::size_t shots = 4000;
  for (std::size_t s = 0; s < shots; ++s) {
    const index_t o = sv.sample(rng);
    ASSERT_TRUE(o == 0 || o == 5);
    hits5 += o == 5;
  }
  EXPECT_NEAR(static_cast<double>(hits5) / static_cast<double>(shots), 0.5, 0.05);
}

}  // namespace
}  // namespace qc::sim
