// Tests for the cache-blocked execution layer (src/sched): the sweep
// scheduler's partitioning/coverage invariants, the qubit-remap
// machinery (swap kernel, unitary re-permutation, restore-to-identity),
// the serial chunk-local kernels, and randomized agreement between the
// "cached" backend and HpcSimulator across qubit counts, chunk widths,
// and remap-triggering workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <numbers>
#include <set>

#include "circuit/builders.hpp"
#include "engine/backend.hpp"
#include "models/perf_model.hpp"
#include "sched/cached_simulator.hpp"
#include "sim/kernels.hpp"
#include "sim/simulator.hpp"

namespace qc::sched {
namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

sim::StateVector random_state(qubit_t n, std::uint64_t seed) {
  sim::StateVector sv(n);
  Rng rng(seed);
  sv.randomize(rng);
  return sv;
}

sim::StateVector copy_state(const sim::StateVector& in) {
  sim::StateVector out(in.qubits());
  std::copy(in.amplitudes().begin(), in.amplitudes().end(), out.amplitudes().begin());
  return out;
}

/// max_abs_diff between the cached backend and HpcSimulator on `c`.
double backend_divergence(const Circuit& c, const CachedSimulator::Options& opts,
                          std::uint64_t seed) {
  sim::StateVector a = random_state(c.qubits(), seed);
  sim::StateVector b = copy_state(a);
  sim::HpcSimulator().run(a, c);
  CachedSimulator(opts).run(b, c);
  return a.max_abs_diff(b);
}

/// A QFT acting only on the TOP `k` qubits of an n-qubit register: every
/// gate has all-high support, so no op is chunk-local until the
/// scheduler remaps the high qubits into the low block.
Circuit high_qubit_qft(qubit_t n, qubit_t k) {
  std::vector<qubit_t> mapping(k);
  for (qubit_t i = 0; i < k; ++i) mapping[i] = n - k + i;
  Circuit c(n);
  c.compose_mapped(circuit::qft(k), mapping);
  return c;
}

// --- chunk width selection ---------------------------------------------

TEST(ChooseChunkWidth, ExplicitWidthClampedToState) {
  ScheduleOptions opts;
  opts.chunk_width = 14;
  EXPECT_EQ(choose_chunk_width(20, opts), 14u);
  EXPECT_EQ(choose_chunk_width(8, opts), 8u);  // chunk >= state: one chunk
}

TEST(ChooseChunkWidth, AutoFitsCacheBudget) {
  ScheduleOptions opts;  // 1 MiB default = 2^16 amplitudes
  const qubit_t w = choose_chunk_width(26, opts);
  EXPECT_LE(dim(w) * sizeof(complex_t), opts.cache_bytes);
  EXPECT_GE(w, 10u);
  EXPECT_EQ(choose_chunk_width(6, opts), 6u);  // never wider than the state
}

// --- scheduler invariants ----------------------------------------------

TEST(Schedule, CoversEveryFusedOpExactlyOnceInOrder) {
  Rng rng(7);
  const Circuit c = circuit::random_circuit(10, 120, rng);
  const fuse::FusedCircuit fc = fuse::fuse_circuit(c, {});
  ScheduleOptions opts;
  opts.chunk_width = 5;
  const BlockedPlan plan = schedule(fc, opts);
  std::vector<std::size_t> seen;
  for (const PlanItem& item : plan.items) {
    if (item.kind == PlanItem::Kind::Sweep)
      for (const ChunkOp& op : item.ops) seen.push_back(op.source_index);
    if (item.kind == PlanItem::Kind::Global) seen.push_back(item.global.source_index);
  }
  ASSERT_EQ(seen.size(), fc.items.size());
  for (std::size_t i = 0; i < seen.size(); ++i)
    EXPECT_EQ(seen[i], i) << "fused op executed out of order or more than once";
  EXPECT_EQ(plan.source_ops, fc.items.size());
}

TEST(Schedule, AllLowCircuitIsOneSweepNoRemaps) {
  Rng rng(3);
  // Gates confined to qubits [0, 6) of a 12-qubit register, chunk 2^8.
  const Circuit c = circuit::random_dense_circuit(6, 60, rng).widened(12);
  ScheduleOptions opts;
  opts.chunk_width = 8;
  const BlockedPlan plan = schedule(fuse::fuse_circuit(c, {}), opts);
  EXPECT_EQ(plan.remaps(), 0u);
  EXPECT_EQ(plan.globals(), 0u);
  EXPECT_EQ(plan.sweeps(), 1u);
  EXPECT_EQ(plan.passes(), 1u) << plan.to_string();
}

TEST(Schedule, ChunkAtLeastStateIsOneSweep) {
  Rng rng(4);
  const Circuit c = circuit::random_circuit(9, 80, rng);
  ScheduleOptions opts;
  opts.chunk_width = 20;  // wider than the 9-qubit state
  const BlockedPlan plan = schedule(fuse::fuse_circuit(c, {}), opts);
  EXPECT_EQ(plan.chunk_width, 9u);
  EXPECT_EQ(plan.sweeps(), 1u);
  EXPECT_EQ(plan.remaps(), 0u);
}

TEST(Schedule, HighQubitRunTriggersRemapAndRestores) {
  const Circuit c = high_qubit_qft(12, 6);
  ScheduleOptions opts;
  opts.chunk_width = 6;
  const BlockedPlan plan = schedule(fuse::fuse_circuit(c, {}), opts);
  EXPECT_GE(plan.remaps(), 2u) << plan.to_string();  // remap in + restore
  // Far fewer passes than one per op: the remapped ops share sweeps.
  EXPECT_LT(plan.passes(), plan.source_ops + 2);
}

TEST(Schedule, LoneHighOpStaysGlobalInsteadOfRemapping) {
  // One high-qubit gate amid a long already-low run: a remap would add
  // passes (remap + restore) without making anything new chunk-local,
  // so the scheduler must emit the high op as a single global pass.
  Rng rng(13);
  Circuit c(12);
  c.h(11);
  c.compose(circuit::random_dense_circuit(3, 90, rng).widened(12));
  ScheduleOptions opts;
  opts.chunk_width = 6;
  const BlockedPlan plan = schedule(fuse::fuse_circuit(c, {}), opts);
  EXPECT_EQ(plan.remaps(), 0u) << plan.to_string();
  EXPECT_EQ(plan.globals(), 1u);
}

TEST(Schedule, RemapDisabledFallsBackToGlobals) {
  const Circuit c = high_qubit_qft(12, 6);
  ScheduleOptions opts;
  opts.chunk_width = 6;
  opts.remap = false;
  const BlockedPlan plan = schedule(fuse::fuse_circuit(c, {}), opts);
  EXPECT_EQ(plan.remaps(), 0u);
  EXPECT_GT(plan.globals(), 0u);
}

TEST(Schedule, WideGateStaysGlobal) {
  Circuit c(12);
  for (qubit_t q = 0; q < 6; ++q) c.h(q);
  Gate mcz = circuit::make_gate(GateKind::Z, 11);
  for (qubit_t q = 0; q < 11; ++q) mcz.controls.push_back(q);
  c.append(mcz);  // 12-qubit support: wider than any chunk
  ScheduleOptions opts;
  opts.chunk_width = 6;
  const BlockedPlan plan = schedule(fuse::fuse_circuit(c, {}), opts);
  EXPECT_GE(plan.globals(), 1u) << plan.to_string();
}

TEST(Schedule, DiagonalOnlyCircuitSweepsDiagonalOps) {
  Circuit c(10);
  for (qubit_t q = 0; q < 10; ++q) c.t(q);
  for (qubit_t q = 0; q + 1 < 10; ++q) c.cr(q, q + 1, std::numbers::pi / (2 + q));
  for (qubit_t q = 0; q < 10; ++q) c.rz(q, 0.3 * (q + 1));
  ScheduleOptions opts;
  opts.chunk_width = 10;
  const BlockedPlan plan = schedule(fuse::fuse_circuit(c, {}), opts);
  bool saw_diagonal = false;
  for (const PlanItem& item : plan.items)
    if (item.kind == PlanItem::Kind::Sweep)
      for (const ChunkOp& op : item.ops) saw_diagonal |= op.kind == ChunkOp::Kind::Diagonal;
  EXPECT_TRUE(saw_diagonal) << plan.to_string();
}

// --- kernels -----------------------------------------------------------

TEST(QubitSwapKernel, MatchesSwapGates) {
  const qubit_t n = 10;
  sim::StateVector a = random_state(n, 11);
  sim::StateVector b = copy_state(a);
  const std::vector<std::array<qubit_t, 2>> pairs{{0, 7}, {2, 9}, {3, 5}};
  sim::kernels::apply_qubit_swaps(a.amplitudes(), n, pairs);
  const sim::HpcSimulator hpc;
  for (const auto& p : pairs) {
    Circuit c(n);
    c.swap(p[0], p[1]);
    hpc.run(b, c);
  }
  EXPECT_LT(a.max_abs_diff(b), 1e-14);
}

TEST(QubitSwapKernel, InvolutionRoundTrips) {
  const qubit_t n = 9;
  sim::StateVector a = random_state(n, 12);
  const sim::StateVector orig = copy_state(a);
  const std::vector<std::array<qubit_t, 2>> pairs{{1, 8}, {0, 4}};
  sim::kernels::apply_qubit_swaps(a.amplitudes(), n, pairs);
  EXPECT_GT(a.max_abs_diff(orig), 1e-6);  // actually moved something
  sim::kernels::apply_qubit_swaps(a.amplitudes(), n, pairs);
  EXPECT_LT(a.max_abs_diff(orig), 1e-15);
}

TEST(SerialKernels, MatchParallelOnRandomGates) {
  const qubit_t n = 8;
  Rng rng(21);
  const Circuit c = circuit::random_circuit(n, 60, rng);
  sim::StateVector a = random_state(n, 22);
  sim::StateVector b = copy_state(a);
  const sim::HpcSimulator hpc;
  for (const Gate& g : c.gates()) {
    hpc.apply_gate(a, g);
    // Serial chunk-local dispatch with the whole state as one chunk.
    const auto span = b.amplitudes();
    const index_t cmask = sim::control_mask(g);
    if (g.kind == GateKind::Swap) {
      sim::kernels::apply_swap_serial(span, n, g.targets[0], g.targets[1], cmask);
    } else if (g.kind == GateKind::X) {
      sim::kernels::apply_x_serial(span, n, g.targets[0], cmask);
    } else if (g.diagonal()) {
      const auto [d0, d1] = sim::diagonal_entries(g);
      sim::kernels::apply_diagonal_serial(span, n, g.targets[0], d0, d1, cmask);
    } else {
      sim::kernels::apply_folded_serial(span, n, g.targets[0], cmask, sim::target_block(g));
    }
  }
  EXPECT_LT(a.max_abs_diff(b), 1e-12);
}

TEST(SerialKernels, MultiSerialMatchesParallel) {
  const qubit_t n = 9;
  Rng rng(31);
  for (qubit_t k = 1; k <= 7; ++k) {
    const linalg::Matrix u = linalg::Matrix::random_unitary(dim(k), rng);
    std::vector<qubit_t> targets;
    for (qubit_t q = 0; q < k; ++q) targets.push_back(q + (k % 2));
    sim::StateVector a = random_state(n, 40 + k);
    sim::StateVector b = copy_state(a);
    const std::span<const complex_t> us{u.data(), u.rows() * u.cols()};
    sim::kernels::apply_multi(a.amplitudes(), n, targets, us);
    sim::kernels::apply_multi_serial(b.amplitudes(), n, targets, us);
    EXPECT_LT(a.max_abs_diff(b), 1e-13) << "k=" << k;
  }
}

TEST(FusedDiagonalFastPath, MatchesPerGateApplication) {
  const qubit_t n = 10;
  // Union support {0, 2, 5, 7} spans 4 qubits: takes the factor-table
  // path. Compare against per-term apply_diagonal.
  std::vector<sim::kernels::DiagonalTerm> terms{
      {0, 0, complex_t{1.0}, complex_t{0.0, 1.0}},
      {2, bits::set(index_t{0}, 5), complex_t{1.0}, std::polar(1.0, 0.7)},
      {7, bits::set(index_t{0}, 0), std::polar(1.0, -0.4), std::polar(1.0, 0.9)},
  };
  sim::StateVector a = random_state(n, 55);
  sim::StateVector b = copy_state(a);
  sim::kernels::apply_fused_diagonal<double>(a.amplitudes(), terms);
  for (const auto& t : terms)
    sim::kernels::apply_diagonal(b.amplitudes(), n, t.target, t.d0, t.d1, t.cmask);
  EXPECT_LT(a.max_abs_diff(b), 1e-13);
}

TEST(FusedDiagonalFastPath, WideSupportStillCorrect) {
  const qubit_t n = 12;
  // 10-qubit union support exceeds kMaxFusedWidth: generic loop path.
  std::vector<sim::kernels::DiagonalTerm> terms;
  for (qubit_t q = 0; q < 10; ++q)
    terms.push_back({q, 0, complex_t{1.0}, std::polar(1.0, 0.1 * (q + 1))});
  sim::StateVector a = random_state(n, 56);
  sim::StateVector b = copy_state(a);
  sim::kernels::apply_fused_diagonal<double>(a.amplitudes(), terms);
  for (const auto& t : terms)
    sim::kernels::apply_diagonal(b.amplitudes(), n, t.target, t.d0, t.d1, t.cmask);
  EXPECT_LT(a.max_abs_diff(b), 1e-13);
}

// --- fused-plan diagonal hoist (satellite: no alloc in execute) --------

TEST(FusedPlan, DiagonalExtractedAtPlanTime) {
  Circuit c(6);
  for (qubit_t q = 0; q < 4; ++q) c.t(q);
  c.cr(0, 3, 0.5).cz(1, 2);
  const fuse::FusedCircuit fc = fuse::fuse_circuit(c, {});
  bool saw_diag_block = false;
  for (const auto& item : fc.items) {
    if (item.kind != fuse::FusedItem::Kind::Block || !item.block.diagonal) continue;
    saw_diag_block = true;
    ASSERT_EQ(item.block.diag.size(), dim(item.block.width()));
    for (index_t d = 0; d < item.block.diag.size(); ++d)
      EXPECT_EQ(item.block.diag[d], item.block.unitary(d, d));
  }
  EXPECT_TRUE(saw_diag_block);
}

// --- cost model --------------------------------------------------------

TEST(BlockingModel, RemapProfitability) {
  EXPECT_FALSE(models::remap_profitable(0));
  EXPECT_FALSE(models::remap_profitable(3));  // saves 2 passes, costs 2
  EXPECT_TRUE(models::remap_profitable(4));
  EXPECT_TRUE(models::remap_profitable(100));
  EXPECT_FALSE(models::remap_profitable(4, 4.0));
}

TEST(BlockingModel, PassSecondsScaleWithSizeAndBandwidth) {
  const auto m = models::MachineParams::stampede();
  EXPECT_DOUBLE_EQ(models::t_state_pass_seconds(21, m),
                   2.0 * models::t_state_pass_seconds(20, m));
  EXPECT_DOUBLE_EQ(models::t_blocked_execution_seconds(20, 10, m),
                   10.0 * models::t_state_pass_seconds(20, m));
}

// --- end-to-end agreement ----------------------------------------------

TEST(CachedBackend, AgreesWithHpcAcrossSizesAndChunkWidths) {
  for (qubit_t n = 4; n <= 16; n += 3) {
    Rng rng(100 + n);
    const Circuit c = circuit::random_circuit(n, 20 * n, rng);
    for (qubit_t chunk : {qubit_t{5}, qubit_t{8}, static_cast<qubit_t>(n + 4)}) {
      CachedSimulator::Options opts;
      opts.sched.chunk_width = chunk;
      EXPECT_LT(backend_divergence(c, opts, 200 + n), 1e-12)
          << "n=" << n << " chunk=" << chunk;
    }
  }
}

TEST(CachedBackend, AgreesAtChunkEqualToOpWidth) {
  // Chunk width exactly the fused-block width: every block fills a whole
  // chunk (the degenerate one-op-per-chunk schedule).
  Rng rng(9);
  const Circuit c = circuit::random_dense_circuit(12, 150, rng);
  CachedSimulator::Options opts;
  opts.fusion.max_width = 5;
  opts.sched.max_block_width = 5;
  opts.sched.chunk_width = 5;
  EXPECT_LT(backend_divergence(c, opts, 10), 1e-12);
}

TEST(CachedBackend, AgreesOnHighQubitQftWithRemaps) {
  const Circuit c = high_qubit_qft(13, 6);
  CachedSimulator::Options opts;
  opts.sched.chunk_width = 6;
  const BlockedPlan plan = CachedSimulator(opts).plan(c);
  ASSERT_GE(plan.remaps(), 2u) << plan.to_string();
  EXPECT_LT(backend_divergence(c, opts, 77), 1e-12);
}

TEST(CachedBackend, AgreesOnFullQftBothOrders) {
  for (qubit_t n : {qubit_t{10}, qubit_t{13}}) {
    CachedSimulator::Options opts;
    opts.sched.chunk_width = 7;
    EXPECT_LT(backend_divergence(circuit::qft(n), opts, n), 1e-12);
    EXPECT_LT(backend_divergence(circuit::inverse_qft(n), opts, n + 1), 1e-12);
  }
}

TEST(CachedBackend, AgreesOnDiagonalOnlyCircuit) {
  Circuit c(11);
  for (qubit_t q = 0; q < 11; ++q) c.t(q);
  for (qubit_t q = 0; q + 1 < 11; ++q) c.cr(q, q + 1, 0.2 * (q + 1));
  for (qubit_t q = 0; q < 11; ++q) c.rz(q, 0.15 * (q + 3));
  CachedSimulator::Options opts;
  opts.sched.chunk_width = 6;
  EXPECT_LT(backend_divergence(c, opts, 42), 1e-12);
}

TEST(CachedBackend, AgreesWithFusionDisabled) {
  Rng rng(19);
  const Circuit c = circuit::random_circuit(10, 80, rng);
  CachedSimulator::Options opts;
  opts.fusion.enabled = false;  // every op is a passthrough gate
  opts.sched.chunk_width = 6;
  EXPECT_LT(backend_divergence(c, opts, 20), 1e-12);
}

TEST(CachedBackend, RegisteredInEngineRegistry) {
  const auto names = engine::backend_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "cached"), names.end());
  EXPECT_EQ(sim::make_simulator("cached")->name(), "cached");
}

// --- state vector first-touch init (satellite sanity) ------------------

TEST(StateVectorInit, StartsInZeroBasisState) {
  sim::StateVector sv(13);
  EXPECT_EQ(sv[0], complex_t{1.0});
  EXPECT_NEAR(sv.norm_sq(), 1.0, 1e-15);
  sv.set_basis(5);
  EXPECT_EQ(sv[5], complex_t{1.0});
  EXPECT_EQ(sv[0], complex_t{});
  EXPECT_NEAR(sv.norm_sq(), 1.0, 1e-15);
}

}  // namespace
}  // namespace qc::sched
