// Tests for the state vector and the three simulators: every kernel is
// checked against the dense Kronecker operator oracle, the simulators
// are checked against each other, and state-level operations
// (measurement, collapse, distributions) against direct computation.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "circuit/builders.hpp"
#include "sim/simulator.hpp"
#include "sim/state_vector.hpp"

namespace qc::sim {
namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

StateVector random_state(qubit_t n, std::uint64_t seed) {
  StateVector sv(n);
  Rng rng(seed);
  sv.randomize(rng);
  return sv;
}

/// Oracle: applies the dense 2^n x 2^n operator of g by matvec.
StateVector apply_dense(const StateVector& in, const Gate& g) {
  const linalg::Matrix op = circuit::gate_operator(g, in.qubits());
  StateVector out(in.qubits());
  op.matvec(in.amplitudes(), out.amplitudes());
  return out;
}

TEST(StateVector, InitializesToZeroState) {
  const StateVector sv(4);
  EXPECT_EQ(sv[0], complex_t{1.0});
  for (index_t i = 1; i < sv.size(); ++i) EXPECT_EQ(sv[i], complex_t{});
  EXPECT_NEAR(sv.norm_sq(), 1.0, 1e-15);
}

TEST(StateVector, SetBasisAndBounds) {
  StateVector sv(3);
  sv.set_basis(5);
  EXPECT_EQ(sv[5], complex_t{1.0});
  EXPECT_EQ(sv[0], complex_t{});
  EXPECT_THROW(sv.set_basis(8), std::invalid_argument);
}

TEST(StateVector, RandomizeIsNormalizedAndDeterministic) {
  StateVector a = random_state(10, 42);
  StateVector b = random_state(10, 42);
  StateVector c = random_state(10, 43);
  EXPECT_NEAR(a.norm_sq(), 1.0, 1e-12);
  EXPECT_EQ(a.max_abs_diff(b), 0.0);
  EXPECT_GT(a.max_abs_diff(c), 1e-3);
}

TEST(StateVector, OverlapProperties) {
  const StateVector a = random_state(8, 1);
  EXPECT_NEAR(a.overlap_abs(a), 1.0, 1e-12);
  StateVector basis(8);
  basis.set_basis(3);
  EXPECT_NEAR(a.overlap_abs(basis), std::abs(a[3]), 1e-12);
}

TEST(StateVector, ProbabilityOfOne) {
  StateVector sv(2);
  // (|00> + |01> + |10> + |11>)/2: every qubit is 1 with probability 1/2.
  for (index_t i = 0; i < 4; ++i) sv[i] = 0.5;
  EXPECT_NEAR(sv.probability_of_one(0), 0.5, 1e-14);
  EXPECT_NEAR(sv.probability_of_one(1), 0.5, 1e-14);
  sv.set_basis(2);  // |10>
  EXPECT_NEAR(sv.probability_of_one(0), 0.0, 1e-14);
  EXPECT_NEAR(sv.probability_of_one(1), 1.0, 1e-14);
}

TEST(StateVector, RegisterDistributionMarginalizes) {
  const StateVector sv = random_state(6, 7);
  const auto dist = sv.register_distribution(1, 3);
  EXPECT_EQ(dist.size(), 8u);
  double total = 0;
  for (double p : dist) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Cross-check one bucket by direct summation.
  double direct = 0;
  for (index_t i = 0; i < sv.size(); ++i)
    if (bits::field(i, 1, 3) == 5) direct += std::norm(sv[i]);
  EXPECT_NEAR(dist[5], direct, 1e-13);
}

TEST(StateVector, SampleFollowsDistribution) {
  StateVector sv(2);
  sv[0] = std::sqrt(0.7);
  sv[3] = std::sqrt(0.3);
  Rng rng(9);
  int count3 = 0;
  const int shots = 20000;
  for (int s = 0; s < shots; ++s) count3 += sv.sample(rng) == 3;
  EXPECT_NEAR(static_cast<double>(count3) / shots, 0.3, 0.02);
}

TEST(StateVector, CollapseRenormalizes) {
  StateVector sv = random_state(5, 11);
  const double p1 = sv.probability_of_one(2);
  ASSERT_GT(p1, 0.01);
  sv.collapse(2, 1);
  EXPECT_NEAR(sv.norm_sq(), 1.0, 1e-12);
  EXPECT_NEAR(sv.probability_of_one(2), 1.0, 1e-12);
}

TEST(StateVector, CollapseZeroProbabilityThrows) {
  StateVector sv(3);  // |000>
  EXPECT_THROW(sv.collapse(0, 1), std::runtime_error);
}

TEST(StateVector, MeasureAndCollapseIsConsistent) {
  Rng rng(13);
  StateVector sv = random_state(4, 13);
  const int outcome = sv.measure_and_collapse(1, rng);
  EXPECT_NEAR(sv.probability_of_one(1), static_cast<double>(outcome), 1e-12);
}

// --- kernel correctness against the dense oracle -----------------------

struct GateCase {
  const char* name;
  Gate gate;
};

class KernelVsOracle : public ::testing::TestWithParam<GateCase> {};

TEST_P(KernelVsOracle, AllThreeSimulatorsMatchDenseOperator) {
  const Gate& g = GetParam().gate;
  const qubit_t n = 5;
  const StateVector in = random_state(n, 1000);
  const StateVector expected = apply_dense(in, g);
  for (const char* name : {"hpc", "qhipster-like", "liquid-like"}) {
    StateVector sv(n);
    std::copy(in.amplitudes().begin(), in.amplitudes().end(), sv.amplitudes().begin());
    make_simulator(name)->apply_gate(sv, g);
    EXPECT_LT(sv.max_abs_diff(expected), 1e-13)
        << GetParam().name << " via " << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Gates, KernelVsOracle,
    ::testing::Values(
        GateCase{"X0", circuit::make_gate(GateKind::X, 0)},
        GateCase{"X4", circuit::make_gate(GateKind::X, 4)},
        GateCase{"Y2", circuit::make_gate(GateKind::Y, 2)},
        GateCase{"Z3", circuit::make_gate(GateKind::Z, 3)},
        GateCase{"H1", circuit::make_gate(GateKind::H, 1)},
        GateCase{"S0", circuit::make_gate(GateKind::S, 0)},
        GateCase{"Sdg2", circuit::make_gate(GateKind::Sdg, 2)},
        GateCase{"T4", circuit::make_gate(GateKind::T, 4)},
        GateCase{"Tdg1", circuit::make_gate(GateKind::Tdg, 1)},
        GateCase{"Rx", circuit::make_gate(GateKind::Rx, 2, 0.77)},
        GateCase{"Ry", circuit::make_gate(GateKind::Ry, 3, 1.23)},
        GateCase{"Rz", circuit::make_gate(GateKind::Rz, 1, 2.31)},
        GateCase{"Phase", circuit::make_gate(GateKind::Phase, 0, 0.5)},
        GateCase{"CNOT01", circuit::make_controlled(GateKind::X, 0, 1)},
        GateCase{"CNOT40", circuit::make_controlled(GateKind::X, 4, 0)},
        GateCase{"CR", circuit::make_controlled(GateKind::Phase, 2, 4, 1.1)},
        GateCase{"CRz", circuit::make_controlled(GateKind::Rz, 3, 0, 0.9)},
        GateCase{"CH", circuit::make_controlled(GateKind::H, 1, 3)},
        GateCase{"Toffoli", circuit::make_toffoli(0, 2, 4)},
        GateCase{"Swap03", circuit::make_swap(0, 3)},
        GateCase{"Swap41", circuit::make_swap(4, 1)}),
    [](const ::testing::TestParamInfo<GateCase>& info) { return info.param.name; });

TEST(Kernels, ControlledSwapMatchesOracle) {
  Gate g = circuit::make_swap(1, 3);
  g.controls = {0};
  const StateVector in = random_state(5, 2000);
  const StateVector expected = apply_dense(in, g);
  for (const char* name : {"hpc", "qhipster-like", "liquid-like"}) {
    StateVector sv(5);
    std::copy(in.amplitudes().begin(), in.amplitudes().end(), sv.amplitudes().begin());
    make_simulator(name)->apply_gate(sv, g);
    EXPECT_LT(sv.max_abs_diff(expected), 1e-13) << name;
  }
}

TEST(Kernels, MultiControlledGateMatchesOracle) {
  Gate g = circuit::make_gate(GateKind::H, 2);
  g.controls = {0, 1, 4};
  const StateVector in = random_state(5, 3000);
  const StateVector expected = apply_dense(in, g);
  StateVector sv(5);
  std::copy(in.amplitudes().begin(), in.amplitudes().end(), sv.amplitudes().begin());
  HpcSimulator().apply_gate(sv, g);
  EXPECT_LT(sv.max_abs_diff(expected), 1e-13);
}

// --- whole-circuit equivalence -----------------------------------------

class SimulatorEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorEquivalence, RandomCircuitsAgreeAcrossSimulators) {
  Rng rng(GetParam());
  const qubit_t n = 7;
  const Circuit c = circuit::random_circuit(n, 60, rng);
  StateVector a = random_state(n, GetParam() + 1);
  StateVector b(n), d(n);
  std::copy(a.amplitudes().begin(), a.amplitudes().end(), b.amplitudes().begin());
  std::copy(a.amplitudes().begin(), a.amplitudes().end(), d.amplitudes().begin());
  HpcSimulator().run(a, c);
  QhipsterLikeSimulator().run(b, c);
  LiquidLikeSimulator().run(d, c);
  EXPECT_LT(a.max_abs_diff(b), 1e-12);
  EXPECT_LT(a.max_abs_diff(d), 1e-12);
  EXPECT_NEAR(a.norm_sq(), 1.0, 1e-11);  // unitarity preserved
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorEquivalence, ::testing::Range<std::uint64_t>(1, 9));

class CircuitVsDense : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CircuitVsDense, SimulatorMatchesDenseUnitaryProduct) {
  // Whole-circuit oracle: the simulator's state equals the product of
  // the gates' dense operators applied by matvec (paper Eq. 3 chained).
  Rng rng(GetParam() * 11);
  const qubit_t n = 5;
  const Circuit c = circuit::random_circuit(n, 30, rng);
  const linalg::Matrix u = c.to_matrix_reference();
  const StateVector in = random_state(n, GetParam() * 13);
  StateVector expected(n);
  u.matvec(in.amplitudes(), expected.amplitudes());
  StateVector sv(n);
  std::copy(in.amplitudes().begin(), in.amplitudes().end(), sv.amplitudes().begin());
  HpcSimulator().run(sv, c);
  EXPECT_LT(sv.max_abs_diff(expected), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CircuitVsDense, ::testing::Range<std::uint64_t>(1, 7));

TEST(Simulators, FusionProducesSameState) {
  Rng rng(77);
  const qubit_t n = 8;
  const Circuit c = circuit::qft(n);  // diagonal-heavy circuit
  StateVector plain = random_state(n, 78);
  StateVector fused(n);
  std::copy(plain.amplitudes().begin(), plain.amplitudes().end(), fused.amplitudes().begin());
  HpcSimulator().run(plain, c);
  HpcSimulator::Options opts;
  opts.fuse_diagonal_runs = true;
  HpcSimulator(opts).run(fused, c);
  EXPECT_LT(plain.max_abs_diff(fused), 1e-12);
}

TEST(Simulators, EntangleProducesGhz) {
  const qubit_t n = 6;
  StateVector sv(n);
  HpcSimulator().run(sv, circuit::entangle(n));
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(sv[0]), inv_sqrt2, 1e-13);
  EXPECT_NEAR(std::abs(sv[dim(n) - 1]), inv_sqrt2, 1e-13);
  for (index_t i = 1; i + 1 < dim(n); ++i) EXPECT_EQ(sv[i], complex_t{});
}

TEST(Simulators, BellStateViaHAndCnot) {
  StateVector sv(2);
  Circuit c(2);
  c.h(0).cnot(0, 1);
  HpcSimulator().run(sv, c);
  EXPECT_NEAR(std::abs(sv[0]), 1.0 / std::sqrt(2.0), 1e-14);
  EXPECT_NEAR(std::abs(sv[3]), 1.0 / std::sqrt(2.0), 1e-14);
  EXPECT_EQ(sv[1], complex_t{});
  EXPECT_EQ(sv[2], complex_t{});
}

TEST(Simulators, MakeSimulatorRejectsUnknown) {
  EXPECT_THROW(make_simulator("nonexistent"), std::invalid_argument);
}

TEST(Simulators, RunRejectsMismatchedQubits) {
  StateVector sv(3);
  const Circuit c = circuit::entangle(4);
  EXPECT_THROW(HpcSimulator().run(sv, c), std::invalid_argument);
}

TEST(FillRandomSlabs, PartitionIndependent) {
  // Generating [0, 2^12) in one window must equal generating it in four.
  const index_t size = index_t{1} << 12;
  aligned_vector<complex_t> whole(size);
  fill_random_slabs<double>(whole, 0, 123);
  aligned_vector<complex_t> parts(size);
  const index_t quarter = size / 4;
  for (int q = 0; q < 4; ++q)
    fill_random_slabs<double>({parts.data() + q * quarter, quarter}, q * quarter, 123);
  for (index_t i = 0; i < size; ++i) EXPECT_EQ(whole[i], parts[i]);
}

}  // namespace
}  // namespace qc::sim
