// Concurrency stress tests — written for the TSan leg of the CI matrix.
//
// These tests exist to give the race detector coverage of the paths
// where threads hand data to each other: ClusterSession's abort /
// recovery cycle (a failing rank aborts peers mid-communication, the
// session drains mailboxes and re-arms), the submit-while-running job
// queue, oversubscribed rank counts (more rank threads than cores, so
// preemption lands mid-protocol), and the Tracer's cross-thread span
// parenting (rank threads record into per-thread logs while the
// submitting thread's current span becomes their parent). They assert
// functional outcomes too, so they still earn their keep under ASan and
// plain Release runs — but their real job is to make TSan look at the
// handoffs, many times, under scheduling pressure.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "obs/trace.hpp"

namespace qc {
namespace {

using cluster::ClusterAborted;
using cluster::ClusterSession;
using cluster::Comm;

TEST(StressCluster, RepeatedAbortRecoveryCycles) {
  constexpr int kRanks = 4;
  constexpr int kCycles = 30;
  ClusterSession session(kRanks, 1);
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    // One rank fails while its peers are blocked in a communication
    // ring; everyone must unwind (ClusterAborted in the peers), the
    // root cause must surface from sync(), and the session must be
    // usable again immediately.
    const int victim = cycle % kRanks;
    session.submit([victim](Comm& comm) {
      if (comm.rank() == victim) throw std::runtime_error("rank failure");
      int token = comm.rank();
      // Blocks against the failing rank eventually; must wake aborted.
      comm.sendrecv<int>((comm.rank() + 1) % comm.size(),
                         std::span<const int>(&token, 1), std::span<int>(&token, 1));
    });
    try {
      session.sync();
      FAIL() << "sync did not rethrow the rank failure";
    } catch (const std::runtime_error& e) {
      // Root cause, not the secondary ClusterAborted.
      EXPECT_STREQ(e.what(), "rank failure");
    }
    // Recovery proof: a full collective over freshly-drained mailboxes.
    std::atomic<int> sum{0};
    session.submit([&sum](Comm& comm) {
      sum += comm.allreduce_sum(comm.rank());
    });
    session.sync();
    EXPECT_EQ(sum.load(), kRanks * (kRanks * (kRanks - 1) / 2));
  }
}

TEST(StressCluster, AbortDuringQueuedBatchSkipsRestOfBatch) {
  constexpr int kRanks = 3;
  ClusterSession session(kRanks, 1);
  for (int cycle = 0; cycle < 20; ++cycle) {
    std::atomic<int> ran_after_failure{0};
    session.submit([](Comm&) {});  // healthy leading job
    session.submit([](Comm& comm) {
      if (comm.rank() == 1) throw std::logic_error("mid-batch failure");
      comm.barrier();  // lint:allow(collective-divergence) -- divergence is the subject: abort must wake the barrier
    });
    session.submit([&ran_after_failure](Comm&) { ran_after_failure += 1; });
    EXPECT_THROW(session.sync(), std::logic_error);
    // The job queued behind the failure must have been skipped on every
    // rank — running it against half-recovered state would be a race.
    EXPECT_EQ(ran_after_failure.load(), 0);
  }
}

TEST(StressCluster, OversubscribedRanksExchangeUnderPressure) {
  // More rank threads than this machine has cores: preemption lands in
  // the middle of the mailbox protocol, which is exactly where TSan
  // wants to look. Every rank pushes a block around a ring and checks
  // what arrives.
  const int kRanks = static_cast<int>(std::thread::hardware_concurrency()) + 6;
  constexpr int kRounds = 10;
  constexpr std::size_t kBlock = 256;
  ClusterSession session(kRanks, 1);
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<int> ok{0};
    session.submit([&ok, round](Comm& comm) {
      std::vector<int> out(kBlock, comm.rank() + round);
      std::vector<int> in(kBlock, -1);
      const int next = (comm.rank() + 1) % comm.size();
      const int prev = (comm.rank() + comm.size() - 1) % comm.size();
      comm.send<int>(next, out, round);
      comm.recv<int>(prev, in, round);
      bool good = true;
      for (const int v : in) good = good && v == prev + round;
      if (good) ok += 1;
      comm.barrier();
    });
    session.sync();
    EXPECT_EQ(ok.load(), kRanks);
  }
}

TEST(StressCluster, ConcurrentSubmittersOneSession) {
  // submit() is called from two threads while workers are draining the
  // queue — exercises the job-log handoff (deque growth vs. workers
  // reading elements outside the mutex).
  constexpr int kRanks = 2;
  constexpr int kJobsPerThread = 25;
  ClusterSession session(kRanks, 1);
  std::atomic<int> executed{0};
  const auto submitter = [&] {
    for (int j = 0; j < kJobsPerThread; ++j)
      session.submit([&executed](Comm& comm) {
        comm.barrier();
        executed += 1;
      });
  };
  std::thread a(submitter), b(submitter);
  a.join();
  b.join();
  session.sync();
  EXPECT_EQ(executed.load(), 2 * kJobsPerThread * kRanks);
}

TEST(StressTrace, RankSpansParentAcrossThreadsUnderAborts) {
  // Spans recorded on rank threads must stitch under the submitting
  // thread's open span, across repeated abort/recovery cycles, without
  // a data race on the tracer handoff (Tracer::current's acquire load
  // pairs with ScopedTracer's release publish).
  constexpr int kRanks = 3;
  constexpr int kCycles = 12;
  obs::Tracer tracer;
  const obs::ScopedTracer scoped(&tracer);
  ClusterSession session(kRanks, 1);
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    obs::Span op_span("stress.op");
    session.submit([cycle](Comm& comm) {
      obs::Span span("stress.rank_work");
      span.arg("rank", static_cast<double>(comm.rank()));
      if (cycle % 3 == 0 && comm.rank() == 0)
        throw std::runtime_error("traced failure");
      comm.barrier();  // lint:allow(collective-divergence) -- divergence is the subject: traced abort path
    });
    if (cycle % 3 == 0) {
      EXPECT_THROW(session.sync(), std::runtime_error);
    } else {
      session.sync();
    }
    op_span.end();
  }
  const obs::TraceData data = tracer.collect();
  // Every completed rank span must have a "stress.op" ancestor: the
  // rank's span nests under its thread's cluster.job span, which the
  // session parents under the submitting thread's open op span.
  std::map<obs::span_id, const obs::SpanEvent*> by_id;
  for (const auto& ev : data.spans) by_id.emplace(ev.id, &ev);
  std::size_t rank_spans = 0, parented = 0;
  for (const auto& ev : data.spans) {
    if (ev.name != "stress.rank_work") continue;
    ++rank_spans;
    for (obs::span_id p = ev.parent; p != 0;) {
      const auto it = by_id.find(p);
      if (it == by_id.end()) break;
      if (it->second->name == "stress.op") {
        ++parented;
        break;
      }
      p = it->second->parent;
    }
  }
  EXPECT_GT(rank_spans, 0u);
  EXPECT_EQ(parented, rank_spans);
}

TEST(StressCluster, DestructorUnderInFlightTimedOutJob) {
  // Tears a session down while a submitted job is still blocked past
  // its deadline, without ever calling sync(). The dtor must stop and
  // join the rank threads: the blocked receivers wake via the deadline
  // (TimeoutError -> abort_all, peers unwind with ClusterAborted), the
  // workers record the failures into the never-collected job slot, park,
  // see stop_ and exit. TSan watches the teardown handoff; the loop
  // varies the interleaving between the timeout firing and the join.
  for (int i = 0; i < 10; ++i) {
    ClusterSession session(4, 1);
    session.set_timeout(0.02);
    session.submit([](Comm& comm) {
      if (comm.rank() == 0) return;  // never sends: peers block, then time out
      int v = 0;
      comm.recv<int>(0, std::span<int>(&v, 1));  // lint:allow(p2p-unmatched) -- starved on purpose: teardown under timeout
    });
    if (i % 2 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(5));
    // Destructor runs here with the job in flight (or mid-unwind).
  }
}

TEST(StressCluster, DestructorWithoutTimeoutAfterAbort) {
  // Same teardown shape, but the in-flight job dies by abort rather
  // than deadline: rank 0 throws immediately, the peers' blocked recvs
  // wake with ClusterAborted, and the dtor joins without a sync().
  for (int i = 0; i < 10; ++i) {
    ClusterSession session(4, 1);
    session.submit([](Comm& comm) {
      if (comm.rank() == 0) throw std::runtime_error("die before sending");
      int v = 0;
      comm.recv<int>(0, std::span<int>(&v, 1));  // lint:allow(p2p-unmatched) -- starved on purpose: teardown after abort
    });
  }
}

}  // namespace
}  // namespace qc
