// sched::verify_plan — the debug invariant layer's static plan checker.
//
// Positive direction: every plan the real schedulers emit (blocked and
// distributed, self-contained and perm_io-chained) verifies clean.
// Negative direction: a deliberately corrupted plan — dropped op,
// duplicated swap position, blown chunk budget, un-restored permutation,
// inconsistent gate accounting — is caught with a PlanError. The same
// corruptions are reachable manually through tools/verify_plan.cpp.
#include <gtest/gtest.h>

#include <numeric>

#include "circuit/builders.hpp"
#include "common/rng.hpp"
#include "fuse/fusion.hpp"
#include "sched/verify_plan.hpp"

namespace qc {
namespace {

using circuit::Circuit;
using sched::BlockedPlan;
using sched::DistPlan;
using sched::DistPlanItem;
using sched::PlanError;
using sched::PlanItem;
using sched::verify_plan;

BlockedPlan blocked_plan(const Circuit& c, sched::ScheduleOptions opts = {}) {
  return sched::schedule(fuse::fuse_circuit(c, {}), opts);
}

/// A workload whose blocked plan actually contains remap items: force a
/// small chunk so high-qubit gates must be relocated.
BlockedPlan plan_with_remaps() {
  Rng rng(11);
  sched::ScheduleOptions opts;
  opts.chunk_width = 6;
  const BlockedPlan plan = blocked_plan(circuit::random_circuit(12, 200, rng), opts);
  EXPECT_GT(plan.remaps(), 0u);
  return plan;
}

TEST(VerifyBlockedPlan, SchedulerOutputPassesQft) {
  verify_plan(blocked_plan(circuit::qft(14)));
}

TEST(VerifyBlockedPlan, SchedulerOutputPassesRandomWithRemaps) {
  verify_plan(plan_with_remaps());
}

TEST(VerifyBlockedPlan, RespectsCacheBudget) {
  sched::ScheduleOptions opts;  // auto width against the default 1 MiB
  const BlockedPlan plan = blocked_plan(circuit::qft(16), opts);
  verify_plan(plan, opts.cache_bytes);
  EXPECT_THROW(verify_plan(plan, 16), PlanError);  // 16-byte "cache"
}

TEST(VerifyBlockedPlan, CatchesDroppedOp) {
  BlockedPlan plan = plan_with_remaps();
  for (auto& item : plan.items) {
    if (item.kind == PlanItem::Kind::Sweep && !item.ops.empty()) {
      item.ops.pop_back();
      break;
    }
  }
  EXPECT_THROW(verify_plan(plan), PlanError);
}

TEST(VerifyBlockedPlan, CatchesReorderedOps) {
  BlockedPlan plan = plan_with_remaps();
  for (auto& item : plan.items) {
    if (item.kind == PlanItem::Kind::Sweep && item.ops.size() >= 2) {
      std::swap(item.ops.front(), item.ops.back());
      break;
    }
  }
  EXPECT_THROW(verify_plan(plan), PlanError);
}

TEST(VerifyBlockedPlan, CatchesNonBijectiveRemap) {
  BlockedPlan plan = plan_with_remaps();
  for (auto& item : plan.items) {
    if (item.kind == PlanItem::Kind::Remap && !item.swaps.empty()) {
      // Reuse a position already swapped: not disjoint, not a bijection.
      item.swaps.push_back({item.swaps.front()[0],
                            static_cast<qubit_t>(plan.n - 1)});
      break;
    }
  }
  EXPECT_THROW(verify_plan(plan), PlanError);
}

TEST(VerifyBlockedPlan, CatchesUnrestoredPermutation) {
  BlockedPlan plan = blocked_plan(circuit::qft(12));
  PlanItem item;
  item.kind = PlanItem::Kind::Remap;
  item.swaps = {{qubit_t{0}, static_cast<qubit_t>(plan.n - 1)}};
  plan.items.push_back(std::move(item));
  EXPECT_THROW(verify_plan(plan), PlanError);
}

TEST(VerifyBlockedPlan, CatchesChunkWiderThanRegister) {
  BlockedPlan plan = blocked_plan(circuit::qft(10));
  plan.chunk_width = static_cast<qubit_t>(plan.n + 1);
  EXPECT_THROW(verify_plan(plan), PlanError);
}

TEST(VerifyBlockedPlan, CatchesSweepOpOutsideChunk) {
  BlockedPlan plan = plan_with_remaps();
  for (auto& item : plan.items) {
    if (item.kind == PlanItem::Kind::Sweep && !item.ops.empty()) {
      // Point a sweep op at a qubit above the chunk: no longer local.
      auto& op = item.ops.front();
      if (op.kind == sched::ChunkOp::Kind::Gate) {
        op.gate.targets[0] = static_cast<qubit_t>(plan.chunk_width);
      } else {
        op.qubits.back() = static_cast<qubit_t>(plan.chunk_width);
      }
      break;
    }
  }
  EXPECT_THROW(verify_plan(plan), PlanError);
}

TEST(VerifyDistPlan, SchedulerOutputPassesQft) {
  verify_plan(sched::dist_schedule(circuit::qft(12), 9, {}));
}

TEST(VerifyDistPlan, SchedulerOutputPassesRandom) {
  Rng rng(23);
  verify_plan(sched::dist_schedule(circuit::random_circuit(11, 150, rng), 8, {}));
}

TEST(VerifyDistPlan, PermIoChainVerifiesAndReplaysPerm) {
  // Two chained segments: segment 2 starts from segment 1's carried
  // permutation; the verifier's replay must agree with perm_io at every
  // seam, and the restore rounds must bring the final state home.
  Rng rng(5);
  const Circuit c1 = circuit::random_circuit(10, 80, rng);
  const Circuit c2 = circuit::random_circuit(10, 80, rng);
  std::vector<qubit_t> perm(10);
  std::iota(perm.begin(), perm.end(), qubit_t{0});

  const DistPlan p1 = sched::dist_schedule(c1, 7, {}, &perm);
  std::vector<qubit_t> replayed;
  {
    std::vector<qubit_t> identity(10);
    std::iota(identity.begin(), identity.end(), qubit_t{0});
    verify_plan(p1, identity, &replayed);
  }
  EXPECT_EQ(replayed, perm);

  const std::vector<qubit_t> seam = perm;
  const DistPlan p2 = sched::dist_schedule(c2, 7, {}, &perm);
  verify_plan(p2, seam, &replayed);
  EXPECT_EQ(replayed, perm);
}

TEST(VerifyDistPlan, CatchesGateCountMismatch) {
  DistPlan plan = sched::dist_schedule(circuit::qft(10), 7, {});
  plan.source_gates += 1;
  EXPECT_THROW(verify_plan(plan), PlanError);
}

TEST(VerifyDistPlan, CatchesUnrestoredExchange) {
  DistPlan plan = sched::dist_schedule(circuit::qft(10), 7, {});
  DistPlanItem item;
  item.kind = DistPlanItem::Kind::Exchange;
  item.swaps = {{qubit_t{0}, static_cast<qubit_t>(plan.n - 1)}};
  plan.items.push_back(std::move(item));
  EXPECT_THROW(verify_plan(plan), PlanError);
}

TEST(VerifyDistPlan, CatchesOverlappingExchangePairs) {
  DistPlan plan = sched::dist_schedule(circuit::qft(10), 7, {});
  DistPlanItem item;
  item.kind = DistPlanItem::Kind::Exchange;
  item.swaps = {{qubit_t{0}, qubit_t{9}}, {qubit_t{0}, qubit_t{8}}};
  plan.items.push_back(std::move(item));
  EXPECT_THROW(verify_plan(plan), PlanError);
}

TEST(VerifyDistPlan, CatchesLocalSegmentOnWrongWidth) {
  DistPlan plan = sched::dist_schedule(circuit::qft(10), 7, {});
  for (auto& item : plan.items) {
    if (item.kind == DistPlanItem::Kind::Local) {
      item.local.n = static_cast<qubit_t>(item.local.n + 1);
      break;
    }
  }
  EXPECT_THROW(verify_plan(plan), PlanError);
}

TEST(VerifyDistPlan, CatchesMoreCrossingPairsThanExecutorSupports) {
  // 17 crossing pairs exceed DistStateVector's 16-pair exchange limit.
  DistPlan plan;
  plan.n = 40;
  plan.local_qubits = 20;
  plan.source_gates = 0;
  DistPlanItem fwd;
  fwd.kind = DistPlanItem::Kind::Exchange;
  for (qubit_t j = 0; j < 17; ++j)
    fwd.swaps.push_back({j, static_cast<qubit_t>(20 + j)});
  DistPlanItem back = fwd;
  plan.items.push_back(fwd);
  plan.items.push_back(back);  // restores order, so only the cap trips
  EXPECT_THROW(verify_plan(plan), PlanError);
}

TEST(CheckMacro, ThrowsCheckErrorWithContext) {
  try {
    detail::check_failed("x > 0", "file.cpp", 42, "context");
    FAIL() << "check_failed returned";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("x > 0"), std::string::npos);
    EXPECT_NE(what.find("file.cpp:42"), std::string::npos);
    EXPECT_NE(what.find("context"), std::string::npos);
  }
}

#if QC_ENABLE_CHECKS
TEST(CheckMacro, ArmedInThisBuild) {
  EXPECT_THROW(QC_CHECK(1 == 2), CheckError);
  EXPECT_NO_THROW(QC_CHECK(1 == 1));
  EXPECT_THROW(QC_CHECK_MSG(false, "ctx"), CheckError);
}
#else
TEST(CheckMacro, CompiledOutInThisBuild) {
  bool evaluated = false;
  QC_CHECK(([&] { evaluated = true; return false; }()));
  EXPECT_FALSE(evaluated);  // condition must not even be evaluated
}
#endif

}  // namespace
}  // namespace qc
