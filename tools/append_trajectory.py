#!/usr/bin/env python3
"""Append the current CI run's bench headlines to the trajectory JSON.

Reads the checked-in BENCH_TRAJECTORY.json, extracts the headline
scalars (every top-level numeric field, e.g. "speedup_auto_vs_hpc",
"qubits") from each given BENCH_*.json, and writes a copy with a
"ci_runs" entry recording them next to the per-PR baseline series.
The checked-in file is never modified — CI uploads the augmented copy
as an artifact so baseline and live numbers diff side by side.

Usage:
  append_trajectory.py BENCH_TRAJECTORY.json BENCH_pr3.json [more...]
      [--out BENCH_TRAJECTORY.ci.json]
"""

import argparse
import json
import os
import sys


def headline_scalars(doc):
    """Top-level numeric fields of one bench JSON (ints/floats, no bools)."""
    if not isinstance(doc, dict):
        return {}
    return {
        k: v
        for k, v in doc.items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    }


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trajectory", help="checked-in BENCH_TRAJECTORY.json")
    ap.add_argument("bench", nargs="+", help="BENCH_*.json files from this run")
    ap.add_argument("--out", default="BENCH_TRAJECTORY.ci.json")
    args = ap.parse_args()

    with open(args.trajectory) as f:
        trajectory = json.load(f)

    run = {
        "sha": os.environ.get("GITHUB_SHA", "local"),
        "run_id": os.environ.get("GITHUB_RUN_ID", ""),
        "benches": [],
    }
    for path in args.bench:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"append_trajectory: skipping {path}: {e}", file=sys.stderr)
            continue
        run["benches"].append(
            {
                "source": os.path.basename(path),
                "bench": doc.get("bench", "") if isinstance(doc, dict) else "",
                "metrics": headline_scalars(doc),
            }
        )

    if not run["benches"]:
        print("append_trajectory: no readable bench files", file=sys.stderr)
        sys.exit(1)

    trajectory.setdefault("ci_runs", []).append(run)
    with open(args.out, "w") as f:
        json.dump(trajectory, f, indent=2)
        f.write("\n")
    print(
        f"append_trajectory: wrote {args.out} "
        f"({len(run['benches'])} benches, sha {run['sha'][:12]})"
    )


if __name__ == "__main__":
    main()
