#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON produced by obs::chrome_trace_json.

Structural checks (CI trace-smoke gate):
  * parses as JSON with a "traceEvents" list;
  * every event is a known phase ("X" complete, "M" metadata, "C" counter)
    with the fields Chrome/Perfetto require (name, ts; dur for "X");
  * span events carry id/parent args and every non-zero parent resolves
    to another span in the file;
  * the parent chain nests at least --min-depth levels (default 4:
    engine op -> dist plan -> sweep/exchange under per-rank jobs);
  * at least --min-lanes distinct tids appear (default 2: the driver
    lane plus at least one rank lane), each with thread_name metadata.

Exit code 0 = valid, 1 = any check failed.

Usage: check_trace.py trace.json [--min-depth 4] [--min-lanes 2]
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}")
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace")
    ap.add_argument("--min-depth", type=int, default=4)
    ap.add_argument("--min-lanes", type=int, default=2)
    args = ap.parse_args()

    with open(args.trace) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"not valid JSON: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("no traceEvents list")

    spans = {}  # id -> event
    named_lanes = set()
    lanes = set()
    for ev in events:
        ph = ev.get("ph")
        if ph not in ("X", "M", "C"):
            fail(f"unknown phase {ph!r} in {ev}")
        if "name" not in ev:
            fail(f"event without name: {ev}")
        if ph == "M":
            if ev["name"] == "thread_name":
                named_lanes.add(ev["tid"])
            continue
        if "ts" not in ev:
            fail(f"event without ts: {ev}")
        if ph == "C":
            continue
        if "dur" not in ev:
            fail(f"complete event without dur: {ev}")
        if ev["dur"] < 0:
            fail(f"negative duration: {ev}")
        lanes.add(ev["tid"])
        span_args = ev.get("args", {})
        if "id" not in span_args or "parent" not in span_args:
            fail(f"span without id/parent args: {ev}")
        spans[span_args["id"]] = ev

    for ev in spans.values():
        parent = ev["args"]["parent"]
        if parent != 0 and parent not in spans:
            fail(f"dangling parent {parent} of span {ev['name']!r}")

    def depth(ev):
        d, seen = 1, set()
        while ev["args"]["parent"] != 0:
            if ev["args"]["id"] in seen:
                fail("parent cycle")
            seen.add(ev["args"]["id"])
            ev = spans[ev["args"]["parent"]]
            d += 1
        return d

    max_depth = max(depth(ev) for ev in spans.values())
    if max_depth < args.min_depth:
        fail(f"max nesting depth {max_depth} < required {args.min_depth}")

    if len(lanes) < args.min_lanes:
        fail(f"{len(lanes)} lanes < required {args.min_lanes}")
    unnamed = lanes - named_lanes
    if unnamed:
        fail(f"lanes without thread_name metadata: {sorted(unnamed)}")

    print(
        f"check_trace: OK: {len(spans)} spans, max depth {max_depth}, "
        f"{len(lanes)} lanes ({len(events)} events)"
    )


if __name__ == "__main__":
    main()
