#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON produced by obs::chrome_trace_json.

Structural checks (CI trace-smoke gate):
  * parses as JSON with a "traceEvents" list;
  * every event is a known phase ("X" complete, "M" metadata, "C" counter)
    with the fields Chrome/Perfetto require (name, ts; dur for "X");
  * span events carry id/parent args and every non-zero parent resolves
    to another span in the file;
  * the parent chain nests at least --min-depth levels (default 4:
    engine op -> dist plan -> sweep/exchange under per-rank jobs);
  * at least --min-lanes distinct tids appear (default 2: the driver
    lane plus at least one rank lane), each with thread_name metadata.

Fault-model checks (--fault-model, for traces of fault-injected runs):
  * every fault./checkpoint./engine.degrade counter is non-negative;
  * fault.injected >= 1 (the schedule actually fired);
  * checkpoint.count matches the number of dist.checkpoint spans and
    checkpoint.restores the number of dist.restore spans;
  * every dist.checkpoint span carries a positive `bytes` arg;
  * fault.retries >= checkpoint.restores (every restore was driven by a
    counted retry).

Exit code 0 = valid, 1 = any check failed.

Usage: check_trace.py trace.json [--min-depth 4] [--min-lanes 2]
       [--fault-model]
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}")
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace")
    ap.add_argument("--min-depth", type=int, default=4)
    ap.add_argument("--min-lanes", type=int, default=2)
    ap.add_argument("--fault-model", action="store_true")
    args = ap.parse_args()

    with open(args.trace) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"not valid JSON: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("no traceEvents list")

    spans = {}  # id -> event
    named_lanes = set()
    lanes = set()
    counters = {}  # name -> value (aggregate "C" events)
    for ev in events:
        ph = ev.get("ph")
        if ph not in ("X", "M", "C"):
            fail(f"unknown phase {ph!r} in {ev}")
        if "name" not in ev:
            fail(f"event without name: {ev}")
        if ph == "M":
            if ev["name"] == "thread_name":
                named_lanes.add(ev["tid"])
            continue
        if "ts" not in ev:
            fail(f"event without ts: {ev}")
        if ph == "C":
            counters[ev["name"]] = ev.get("args", {}).get("value")
            continue
        if "dur" not in ev:
            fail(f"complete event without dur: {ev}")
        if ev["dur"] < 0:
            fail(f"negative duration: {ev}")
        lanes.add(ev["tid"])
        span_args = ev.get("args", {})
        if "id" not in span_args or "parent" not in span_args:
            fail(f"span without id/parent args: {ev}")
        spans[span_args["id"]] = ev

    for ev in spans.values():
        parent = ev["args"]["parent"]
        if parent != 0 and parent not in spans:
            fail(f"dangling parent {parent} of span {ev['name']!r}")

    def depth(ev):
        d, seen = 1, set()
        while ev["args"]["parent"] != 0:
            if ev["args"]["id"] in seen:
                fail("parent cycle")
            seen.add(ev["args"]["id"])
            ev = spans[ev["args"]["parent"]]
            d += 1
        return d

    max_depth = max(depth(ev) for ev in spans.values())
    if max_depth < args.min_depth:
        fail(f"max nesting depth {max_depth} < required {args.min_depth}")

    if len(lanes) < args.min_lanes:
        fail(f"{len(lanes)} lanes < required {args.min_lanes}")
    unnamed = lanes - named_lanes
    if unnamed:
        fail(f"lanes without thread_name metadata: {sorted(unnamed)}")

    if args.fault_model:
        check_fault_model(spans, counters)

    print(
        f"check_trace: OK: {len(spans)} spans, max depth {max_depth}, "
        f"{len(lanes)} lanes ({len(events)} events)"
    )


def check_fault_model(spans, counters):
    """Cross-check the failure-domain counters against the span tree."""
    fault_names = [
        n
        for n in counters
        if n.startswith(("fault.", "checkpoint.")) or n == "engine.degrade"
    ]
    for name in fault_names:
        v = counters[name]
        if not isinstance(v, (int, float)) or v < 0:
            fail(f"fault-model counter {name} has bad value {v!r}")

    injected = counters.get("fault.injected", 0)
    if injected < 1:
        fail("fault-model trace without a single injected fault")

    ckpt_spans = [ev for ev in spans.values() if ev["name"] == "dist.checkpoint"]
    restore_spans = [ev for ev in spans.values() if ev["name"] == "dist.restore"]
    if counters.get("checkpoint.count", 0) != len(ckpt_spans):
        fail(
            f"checkpoint.count {counters.get('checkpoint.count', 0)} != "
            f"{len(ckpt_spans)} dist.checkpoint spans"
        )
    if counters.get("checkpoint.restores", 0) != len(restore_spans):
        fail(
            f"checkpoint.restores {counters.get('checkpoint.restores', 0)} != "
            f"{len(restore_spans)} dist.restore spans"
        )
    for ev in ckpt_spans:
        if ev["args"].get("bytes", 0) <= 0:
            fail(f"dist.checkpoint span without positive bytes arg: {ev}")
    if counters.get("fault.retries", 0) < counters.get("checkpoint.restores", 0):
        fail(
            f"fault.retries {counters.get('fault.retries', 0)} < "
            f"checkpoint.restores {counters.get('checkpoint.restores', 0)}"
        )
    print(
        f"check_trace: fault-model OK: {injected:.0f} injected, "
        f"{len(ckpt_spans)} checkpoints, {len(restore_spans)} restores, "
        f"{counters.get('fault.retries', 0):.0f} retries"
    )


if __name__ == "__main__":
    main()
