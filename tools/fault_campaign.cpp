// fault_campaign — seeded fault-injection matrix over the dist backend.
//
// Runs one mixed program (gate segments with global-qubit traffic, a
// collapsing measurement, an expectation, a trailing measurement) on
// the "hpc" backend as ground truth, then re-runs it on "dist" under a
// matrix of deterministic fault schedules spanning every action
// (delay / drop / abort / alloc-fail) across the instrumented sites
// (send / sendrecv / barrier / job / alloc / exchange / scatter /
// gather). The campaign contract, per schedule:
//
//   * the run completes and its final state is bit-identical to the hpc
//     reference (max |amp diff| <= 1e-12, identical measurement
//     outcomes, expectations within 1e-12) — via retry-from-checkpoint
//     or, when retries are exhausted, the engine's dist->cached
//     degradation (still bit-identical: measurement draws are
//     engine-side); or
//   * (--no-degrade) it fails with a *typed* cluster error, after which
//     a clean re-run of the same engine still matches the reference —
//     the recovered-session proof.
//
// Anything else — an untyped exception, a wrong result — is a contract
// violation: counted, reported, nonzero exit.
//
// Also measures two overhead headlines for the BENCH trajectory:
// checkpoint overhead (forced every-segment checkpoints vs checkpoints
// off, no faults) and recovery latency (one injected abort vs clean).
//
// Run: ./fault_campaign [--qubits 16] [--ranks 4] [--schedules 14]
//      [--seed 1] [--timeout 0.5] [--retries 2] [--no-degrade]
//      [--json out.json] [--trace-out trace.json] [--verbose]
#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/fault.hpp"
#include "common/cli.hpp"
#include "common/timer.hpp"
#include "engine/engine.hpp"
#include "obs/report.hpp"

namespace {

using namespace qc;

/// The campaign program: every fault site gets traffic. Global-qubit
/// gates force exchanges, the QFT pair forces long gate segments (and
/// checkpoints between them), the collapsing measure exercises the
/// forced pre-collapse checkpoint, the trailing measure the post-replay
/// path.
engine::Program make_program(qubit_t n) {
  engine::Program p(n);
  for (qubit_t q = 0; q < n; ++q) {
    p.h(q);
    p.rz(q, 0.13 * static_cast<double>(q + 1));
  }
  p.cnot(0, static_cast<qubit_t>(n - 1));
  p.cnot(static_cast<qubit_t>(n - 1), 1);
  p.qft();
  p.expectation_z(index_t{0b101});
  p.inverse_qft();
  p.measure({0, 2});
  for (qubit_t q = 0; q < n; ++q) p.rx(q, 0.05 * static_cast<double>(q + 1));
  p.cz(0, static_cast<qubit_t>(n - 1));
  p.measure({static_cast<qubit_t>(n - 2), 2});
  return p;
}

/// Max |amplitude difference| between two equal-width states.
double max_amp_diff(const sim::StateVector& a, const sim::StateVector& b) {
  const auto av = a.amplitudes();
  const auto bv = b.amplitudes();
  if (av.size() != bv.size()) return 1e300;
  double max = 0;
  for (std::size_t i = 0; i < av.size(); ++i)
    max = std::max(max, std::abs(av[i] - bv[i]));
  return max;
}

/// Bit-identical-to-reference contract (1e-12 on amplitudes and
/// expectations, exact on measurement outcomes).
bool matches(const engine::Result& r, const engine::Result& ref, std::string* why) {
  if (r.measurements != ref.measurements) {
    *why = "measurement outcomes differ";
    return false;
  }
  if (r.expectations.size() != ref.expectations.size()) {
    *why = "expectation count differs";
    return false;
  }
  for (std::size_t i = 0; i < r.expectations.size(); ++i)
    if (std::abs(r.expectations[i] - ref.expectations[i]) > 1e-12) {
      *why = "expectation value differs";
      return false;
    }
  const double d = max_amp_diff(r.state, ref.state);
  if (d > 1e-12) {
    *why = "state differs (max amp diff " + std::to_string(d) + ")";
    return false;
  }
  return true;
}

/// The deterministic core matrix: every action crossed over the site
/// list, hits/ranks staggered so faults land in different run phases.
std::vector<std::string> core_schedules(double /*timeout_s*/) {
  return {
      "abort@cluster.job#1",            // mid-run job abort, every rank
      "abort@cluster.job#0/2",          // rank 2's first job
      "abort@cluster.barrier#2",        // barrier abort
      "abort@cluster.sendrecv#1",       // pairwise exchange abort
      "abort@dist.exchange#0",          // first chunk exchange
      "abort@dist.exchange_pass#1",     // remap pass abort
      "abort@dist.scatter#0/1",         // scatter abort on rank 1
      "abort@dist.gather#0",            // gather abort at finalize
      "drop@cluster.send#1",            // lost message -> peer timeout
      "drop@cluster.send#2/1",          // rank 1 loses its 3rd send
      "delay@cluster.job#1/0:150",      // slow rank, inside deadline
      "delay@cluster.barrier#1:150",    // slow barrier arrival
      "abort@cluster.allgather#0",      // collective abort (measurement path)
      "delay@cluster.broadcast#0:100",  // slow outcome broadcast, inside deadline
      "allocfail@dist.alloc#0/1",       // rank 1 chunk allocation fails
      // Cascade: every recovery attempt is itself aborted until the
      // retry budget runs out — the degradation ladder's deterministic
      // demonstration (completes bit-identical on "cached").
      "abort@cluster.job#1;abort@cluster.job#2;abort@cluster.job#3;abort@cluster.job#4",
  };
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto n = static_cast<qubit_t>(cli.get_int("qubits", 16));
  const int ranks = static_cast<int>(cli.get_int("ranks", 4));
  const auto want = static_cast<std::size_t>(cli.get_int("schedules", 16));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const double timeout_s = cli.get_double("timeout", 0.5);
  const int retries = static_cast<int>(cli.get_int("retries", 2));
  const bool degrade = !cli.has("no-degrade");
  const bool verbose = cli.has("verbose");
  const std::string json_path = cli.get_string("json", "");
  const std::string trace_path = cli.get_string("trace-out", "");

  const engine::Program program = make_program(n);
  const engine::Engine eng;

  engine::RunOptions ref_opts;
  ref_opts.backend = "hpc";
  ref_opts.seed = seed;
  const engine::Result ref = eng.run(program, ref_opts);

  engine::RunOptions base;
  base.backend = "dist";
  base.seed = seed;
  base.dist_ranks = ranks;
  base.dist_timeout_s = timeout_s;
  base.dist_max_retries = retries;
  base.degrade = degrade;

  // Clean dist run first: the matrix is meaningless if the fault-free
  // path is already broken.
  {
    const engine::Result clean = eng.run(program, base);
    std::string why;
    if (!matches(clean, ref, &why)) {
      std::fprintf(stderr, "fault_campaign: clean dist run violates reference: %s\n",
                   why.c_str());
      return 1;
    }
  }

  std::vector<std::string> schedules = core_schedules(timeout_s);
  // Beyond the deterministic core, extend with seeded random schedules —
  // same --seed, same matrix, forever.
  for (std::uint64_t i = 0; schedules.size() < want; ++i)
    schedules.push_back(
        cluster::FaultInjector::seeded(seed + 1000 + i, 2, ranks, 0.1).to_string());
  if (schedules.size() > want) schedules.resize(want);

  std::size_t completed = 0, degraded = 0, failed_typed = 0, violations = 0;
  double recovery_latency_s = 0;
  for (std::size_t i = 0; i < schedules.size(); ++i) {
    engine::RunOptions opts = base;
    opts.fault_spec = schedules[i];
    std::string outcome;
    std::string why;
    WallTimer t;
    try {
      const engine::Result r = eng.run(program, opts);
      if (matches(r, ref, &why)) {
        ++completed;
        if (r.degraded) ++degraded;
        outcome = r.degraded ? "degraded (" + r.degrade_reason + ")" : "completed";
      } else {
        ++violations;
        outcome = "VIOLATION: completed but " + why;
      }
    } catch (const cluster::ClusterError& e) {
      // Typed failure: legal iff the next, fault-free run is clean —
      // the session/process recovered.
      ++failed_typed;
      outcome = std::string("failed typed (") + e.what() + ")";
      try {
        const engine::Result again = eng.run(program, base);
        if (!matches(again, ref, &why)) {
          ++violations;
          outcome += "; VIOLATION: recovery run " + why;
        }
      } catch (const std::exception& e2) {
        ++violations;
        outcome += std::string("; VIOLATION: recovery run threw: ") + e2.what();
      }
    } catch (const std::exception& e) {
      ++violations;
      outcome = std::string("VIOLATION: untyped exception: ") + e.what();
    }
    if (verbose || outcome.find("VIOLATION") != std::string::npos)
      std::fprintf(stderr, "  [%2zu] %-44s -> %s (%.3fs)\n", i, schedules[i].c_str(),
                   outcome.c_str(), t.seconds());
  }

  // Headline 1: checkpoint overhead — forced every-segment checkpoints
  // vs checkpoints off, no faults injected.
  double t_ckpt_off = 0, t_ckpt_on = 0;
  {
    engine::RunOptions off = base;
    off.dist_checkpoint_interval = -1;
    engine::RunOptions on = base;
    on.dist_checkpoint_interval = 1;
    t_ckpt_off = eng.run(program, off).total_seconds;
    t_ckpt_off = std::min(t_ckpt_off, eng.run(program, off).total_seconds);
    t_ckpt_on = eng.run(program, on).total_seconds;
    t_ckpt_on = std::min(t_ckpt_on, eng.run(program, on).total_seconds);
  }

  // Headline 2: recovery latency — one mid-run abort (retried from
  // checkpoint) vs the checkpointing clean run.
  {
    engine::RunOptions faulty = base;
    faulty.dist_checkpoint_interval = 1;
    faulty.fault_spec = "abort@dist.exchange#1";
    const double t_faulty = eng.run(program, faulty).total_seconds;
    recovery_latency_s = std::max(0.0, t_faulty - t_ckpt_on);
  }

  if (!trace_path.empty()) {
    // One traced faulty run for check_trace.py --fault-model: forced
    // checkpoints plus a retryable abort exercise every fault counter
    // and the checkpoint/restore spans.
    engine::RunOptions traced = base;
    traced.dist_checkpoint_interval = 1;
    traced.fault_spec = "abort@dist.exchange#1";
    traced.trace = true;
    const engine::Result r = eng.run(program, traced);
    std::ofstream out(trace_path);
    if (r.trace_data != nullptr) out << obs::chrome_trace_json(*r.trace_data);
  }

  const double overhead = t_ckpt_off > 0 ? t_ckpt_on / t_ckpt_off - 1.0 : 0.0;
  std::string json;
  json += "{\n";
  json += "  \"bench\": \"fault_campaign\",\n";
  json += "  \"qubits\": " + std::to_string(n) + ",\n";
  json += "  \"ranks\": " + std::to_string(ranks) + ",\n";
  json += "  \"seed\": " + std::to_string(seed) + ",\n";
  json += "  \"schedules_total\": " + std::to_string(schedules.size()) + ",\n";
  json += "  \"schedules_completed\": " + std::to_string(completed) + ",\n";
  json += "  \"schedules_degraded\": " + std::to_string(degraded) + ",\n";
  json += "  \"schedules_failed_typed\": " + std::to_string(failed_typed) + ",\n";
  json += "  \"contract_violations\": " + std::to_string(violations) + ",\n";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", t_ckpt_off);
  json += "  \"clean_seconds\": " + std::string(buf) + ",\n";
  std::snprintf(buf, sizeof buf, "%.6f", t_ckpt_on);
  json += "  \"checkpointed_seconds\": " + std::string(buf) + ",\n";
  std::snprintf(buf, sizeof buf, "%.4f", overhead);
  json += "  \"checkpoint_overhead\": " + std::string(buf) + ",\n";
  std::snprintf(buf, sizeof buf, "%.6f", recovery_latency_s);
  json += "  \"recovery_latency_s\": " + std::string(buf) + "\n";
  json += "}\n";

  std::printf("%s", json.c_str());
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json;
  }

  if (violations > 0) {
    std::fprintf(stderr, "fault_campaign: FAIL: %zu contract violation(s)\n", violations);
    return 1;
  }
  std::fprintf(stderr,
               "fault_campaign: OK: %zu schedules (%zu completed, %zu degraded, "
               "%zu failed typed with clean recovery)\n",
               schedules.size(), completed, degraded, failed_typed);
  return 0;
}
