#!/usr/bin/env python3
"""Repo lint gate — project-specific rules clang-tidy cannot express.

Rules:

  raw-shift        int-width shifts of 1 by a *variable* amount
                   (`1 << k`, `1u << k`) are rejected in amplitude/rank
                   index code: the shift promotes to int, which is
                   undefined behaviour the moment the count reaches 31.
                   Use bits::bit(k) / bits::mask(k) (src/common/bits.hpp)
                   or an explicitly 64-bit literal. Literal shift counts
                   (`1 << 20`) are fine — the compiler checks those.

  naked-new        `new` expressions outside std::make_unique/make_shared
                   are rejected in library code; ownership must be RAII
                   from the first instruction.

  submit-closure   closures handed to ClusterSession::submit run on rank
                   threads where a thrown exception unwinds through the
                   abort/recovery path; anything the closure acquired
                   must release itself. Bare mutex .lock()/.unlock(),
                   malloc/free and naked new inside a submit closure are
                   rejected — use lock_guard/unique_lock and containers.
                   Delegated to tools/qc_analyze's AST-accurate rule,
                   which also sees lambdas nested in the closure and
                   same-file helpers it calls (the old regex scan saw
                   neither).

  header-compile   every header under src/ must compile on its own
                   (self-contained includes), checked by feeding
                   `#include "<header>"` to the compiler per header.
                   Flags come from the build tree's
                   compile_commands.json when present (so the check
                   matches the real build), with a hardcoded fallback.

A finding can be waived on its line with a trailing comment:
    foo();  // lint:allow(<rule>) -- reason
Waivers require a reason and are themselves reported (as notes).

Usage: tools/lint.py [--skip-headers] [--cxx g++] [-p build]
Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shlex
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

sys.path.insert(0, os.path.join(REPO, "tools", "qc_analyze"))
import qc_analyze  # noqa: E402

# Library code gets every rule; tests/bench/examples still must not race
# or UB, so raw-shift and submit-closure apply there too, but naked-new
# is a style rule we only enforce for the library and tools.
LIB_DIRS = ["src", "tools"]
ALL_DIRS = ["src", "tools", "tests", "bench", "examples"]

ALLOW = re.compile(r"lint:allow\(([a-z0-9-]+)\)\s*(?:--|—)?\s*(.*)")


# The analyzer's fixture corpus deliberately violates every rule; it is
# analyzer *input*, never compiled and never linted.
FIXTURES = os.path.join(REPO, "tools", "qc_analyze", "fixtures")


def cxx_files(dirs):
    for d in dirs:
        root = os.path.join(REPO, d)
        if not os.path.isdir(root):
            continue
        for dirpath, _, names in os.walk(root):
            if dirpath.startswith(FIXTURES):
                continue
            for name in sorted(names):
                if name.endswith((".cpp", ".hpp")):
                    yield os.path.join(dirpath, name)


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line
    structure so reported line numbers stay valid. Keeps the comment
    text of lint:allow markers out — waivers are parsed from the raw
    line separately."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif ch == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            seg = text[i : j + 2]
            out.append("".join(c if c == "\n" else " " for c in seg))
            i = j + 2
        elif ch in "\"'":
            q = ch
            j = i + 1
            while j < n and text[j] != q:
                j += 2 if text[j] == "\\" else 1
            out.append(q + " " * (j - i - 1) + q)
            i = j + 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


class Findings:
    def __init__(self):
        self.errors = []
        self.notes = []

    def error(self, path, line, rule, message):
        rel = os.path.relpath(path, REPO)
        self.errors.append(f"{rel}:{line}: [{rule}] {message}")

    def note(self, path, line, message):
        rel = os.path.relpath(path, REPO)
        self.notes.append(f"{rel}:{line}: {message}")


def waiver_for(raw_line: str):
    m = ALLOW.search(raw_line)
    if not m:
        return None
    return m.group(1), m.group(2).strip()


def check_line_rule(path, raw_lines, clean_lines, rule, pattern, message, findings):
    for lineno, clean in enumerate(clean_lines, 1):
        if not pattern.search(clean):
            continue
        raw = raw_lines[lineno - 1]
        waiver = waiver_for(raw)
        if waiver and waiver[0] == rule:
            if not waiver[1]:
                findings.error(path, lineno, rule, "waiver without a reason")
            else:
                findings.note(path, lineno, f"waived [{rule}]: {waiver[1]}")
            continue
        findings.error(path, lineno, rule, message)


# `1 << var` / `1u << var` at int width. A preceding { means a typed
# literal (index_t{1} << k) — 64-bit, fine. A literal or sizeof RHS is
# compiler-checked. 64-bit suffixes (1ull) don't promote to int.
RAW_SHIFT = re.compile(r"(?<![\w{.])1[uU]?\s*<<\s*(?!\s*[0-9]|\s*sizeof\b)")

# `new T` outside make_unique/make_shared; placement new would also be
# caught, which is intended — there is none in this codebase.
NAKED_NEW = re.compile(r"(?<![\w_])new\s+[A-Za-z_:<]")


def check_raw_shift(path, raw_lines, clean_lines, findings):
    check_line_rule(
        path, raw_lines, clean_lines, "raw-shift", RAW_SHIFT,
        "int-width shift of 1 by a variable — use bits::bit()/bits::mask() "
        "(common/bits.hpp) or a 64-bit literal", findings)


def check_naked_new(path, raw_lines, clean_lines, findings):
    check_line_rule(
        path, raw_lines, clean_lines, "naked-new", NAKED_NEW,
        "naked new — use std::make_unique/make_shared or a container", findings)


def check_submit_closures(findings):
    """Delegates to qc-analyze's AST rule: the regex predecessor scanned
    only the closure's textual brace extent, so it missed unsafe code in
    same-file helpers the closure calls (and misattributed nested
    lambdas). The analyzer walks both; waivers use the identical
    lint:allow(submit-closure) syntax and surface here unchanged."""
    files = qc_analyze.files_from_paths(
        [d for d in ALL_DIRS if os.path.isdir(os.path.join(REPO, d))])
    results, _ = qc_analyze.analyze(files, {"submit-closure"})
    for f in results:
        path = os.path.join(REPO, f.file)
        if f.waived:
            findings.note(path, f.line, f"waived [submit-closure]: {f.reason}")
        else:
            findings.error(path, f.line, "submit-closure", f.message)


def flags_from_compile_db(build_dir: str):
    """Include paths / -std / -D / OpenMP flags of a real src/ TU from
    the build tree's compile_commands.json, so the header check compiles
    headers the way the build does. Returns None if no database."""
    db = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db):
        return None
    with open(db, encoding="utf-8") as f:
        entries = json.load(f)
    for entry in entries:
        src_file = entry.get("file", "")
        if not src_file.endswith(".cpp") or (os.sep + "src" + os.sep) not in src_file:
            continue
        argv = entry.get("arguments") or shlex.split(entry["command"])
        base = entry.get("directory", build_dir)
        flags, take_path = [], False
        for arg in argv[1:]:
            if take_path:
                flags.append(os.path.normpath(os.path.join(base, arg)))
                take_path = False
            elif arg in ("-I", "-isystem"):
                flags.append(arg)
                take_path = True
            elif arg.startswith("-I"):
                flags.append("-I" + os.path.normpath(os.path.join(base, arg[2:])))
            elif arg.startswith(("-D", "-std=")) or arg == "-fopenmp":
                flags.append(arg)
        if flags:
            return flags
    return None


def check_headers(cxx: str, build_dir: str, findings) -> bool:
    """Compiles `#include "<header>"` for every header under src/."""
    headers = [p for p in cxx_files(["src"]) if p.endswith(".hpp")]
    flags = flags_from_compile_db(build_dir)
    if flags is None:
        flags = ["-std=c++20", "-fopenmp", "-I", os.path.join(REPO, "src")]
    ok = True
    with tempfile.TemporaryDirectory() as tmp:
        for header in headers:
            rel = os.path.relpath(header, os.path.join(REPO, "src"))
            tu = os.path.join(tmp, "header_check.cpp")
            with open(tu, "w") as f:
                f.write(f'#include "{rel}"\n')
            cmd = [cxx, *flags, "-fsyntax-only", tu]
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode != 0:
                ok = False
                findings.error(header, 1, "header-compile",
                               "header is not self-contained:\n"
                               + proc.stderr.strip())
    return ok


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--skip-headers", action="store_true",
                    help="skip the compile-each-header check (no compiler needed)")
    ap.add_argument("--cxx", default=os.environ.get("CXX", "g++"),
                    help="compiler for the header check (default: $CXX or g++)")
    ap.add_argument("-p", "--build", default=os.path.join(REPO, "build"),
                    help="build dir whose compile_commands.json supplies the "
                         "header-check flags (default: ./build; falls back "
                         "to hardcoded flags if absent)")
    args = ap.parse_args()

    findings = Findings()
    for path in cxx_files(ALL_DIRS):
        with open(path, encoding="utf-8") as f:
            text = f.read()
        raw_lines = text.splitlines()
        clean_text = strip_comments_and_strings(text)
        clean_lines = clean_text.splitlines()
        check_raw_shift(path, raw_lines, clean_lines, findings)
        if any(os.path.relpath(path, REPO).startswith(d + os.sep) for d in LIB_DIRS):
            check_naked_new(path, raw_lines, clean_lines, findings)
    check_submit_closures(findings)

    if not args.skip_headers:
        check_headers(args.cxx, args.build, findings)

    for note in findings.notes:
        print(f"note: {note}")
    for err in findings.errors:
        print(f"error: {err}")
    if findings.errors:
        print(f"\nlint: {len(findings.errors)} finding(s)")
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
