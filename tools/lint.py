#!/usr/bin/env python3
"""Repo lint gate — project-specific rules clang-tidy cannot express.

Rules:

  raw-shift        int-width shifts of 1 by a *variable* amount
                   (`1 << k`, `1u << k`) are rejected in amplitude/rank
                   index code: the shift promotes to int, which is
                   undefined behaviour the moment the count reaches 31.
                   Use bits::bit(k) / bits::mask(k) (src/common/bits.hpp)
                   or an explicitly 64-bit literal. Literal shift counts
                   (`1 << 20`) are fine — the compiler checks those.

  naked-new        `new` expressions outside std::make_unique/make_shared
                   are rejected in library code; ownership must be RAII
                   from the first instruction.

  submit-closure   closures handed to ClusterSession::submit run on rank
                   threads where a thrown exception unwinds through the
                   abort/recovery path; anything the closure acquired
                   must release itself. Bare mutex .lock()/.unlock(),
                   malloc/free and naked new inside a submit closure are
                   rejected — use lock_guard/unique_lock and containers.

  header-compile   every header under src/ must compile on its own
                   (self-contained includes), checked by feeding
                   `#include "<header>"` to the compiler per header.

A finding can be waived on its line with a trailing comment:
    foo();  // lint:allow(<rule>) -- reason
Waivers require a reason and are themselves reported (as notes).

Usage: tools/lint.py [--skip-headers] [--cxx g++]
Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Library code gets every rule; tests/bench/examples still must not race
# or UB, so raw-shift and submit-closure apply there too, but naked-new
# is a style rule we only enforce for the library and tools.
LIB_DIRS = ["src", "tools"]
ALL_DIRS = ["src", "tools", "tests", "bench", "examples"]

ALLOW = re.compile(r"lint:allow\(([a-z-]+)\)\s*(?:--|—)?\s*(.*)")


def cxx_files(dirs):
    for d in dirs:
        root = os.path.join(REPO, d)
        if not os.path.isdir(root):
            continue
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if name.endswith((".cpp", ".hpp")):
                    yield os.path.join(dirpath, name)


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line
    structure so reported line numbers stay valid. Keeps the comment
    text of lint:allow markers out — waivers are parsed from the raw
    line separately."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif ch == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            seg = text[i : j + 2]
            out.append("".join(c if c == "\n" else " " for c in seg))
            i = j + 2
        elif ch in "\"'":
            q = ch
            j = i + 1
            while j < n and text[j] != q:
                j += 2 if text[j] == "\\" else 1
            out.append(q + " " * (j - i - 1) + q)
            i = j + 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


class Findings:
    def __init__(self):
        self.errors = []
        self.notes = []

    def error(self, path, line, rule, message):
        rel = os.path.relpath(path, REPO)
        self.errors.append(f"{rel}:{line}: [{rule}] {message}")

    def note(self, path, line, message):
        rel = os.path.relpath(path, REPO)
        self.notes.append(f"{rel}:{line}: {message}")


def waiver_for(raw_line: str):
    m = ALLOW.search(raw_line)
    if not m:
        return None
    return m.group(1), m.group(2).strip()


def check_line_rule(path, raw_lines, clean_lines, rule, pattern, message, findings):
    for lineno, clean in enumerate(clean_lines, 1):
        if not pattern.search(clean):
            continue
        raw = raw_lines[lineno - 1]
        waiver = waiver_for(raw)
        if waiver and waiver[0] == rule:
            if not waiver[1]:
                findings.error(path, lineno, rule, "waiver without a reason")
            else:
                findings.note(path, lineno, f"waived [{rule}]: {waiver[1]}")
            continue
        findings.error(path, lineno, rule, message)


# `1 << var` / `1u << var` at int width. A preceding { means a typed
# literal (index_t{1} << k) — 64-bit, fine. A literal or sizeof RHS is
# compiler-checked. 64-bit suffixes (1ull) don't promote to int.
RAW_SHIFT = re.compile(r"(?<![\w{.])1[uU]?\s*<<\s*(?!\s*[0-9]|\s*sizeof\b)")

# `new T` outside make_unique/make_shared; placement new would also be
# caught, which is intended — there is none in this codebase.
NAKED_NEW = re.compile(r"(?<![\w_])new\s+[A-Za-z_:<]")


def check_raw_shift(path, raw_lines, clean_lines, findings):
    check_line_rule(
        path, raw_lines, clean_lines, "raw-shift", RAW_SHIFT,
        "int-width shift of 1 by a variable — use bits::bit()/bits::mask() "
        "(common/bits.hpp) or a 64-bit literal", findings)


def check_naked_new(path, raw_lines, clean_lines, findings):
    check_line_rule(
        path, raw_lines, clean_lines, "naked-new", NAKED_NEW,
        "naked new — use std::make_unique/make_shared or a container", findings)


SUBMIT = re.compile(r"\b(?:submit|run)\s*\(\s*\[")
UNSAFE_IN_CLOSURE = [
    (re.compile(r"\.\s*lock\s*\(\s*\)"), "bare .lock() — use std::lock_guard/unique_lock"),
    (re.compile(r"\.\s*unlock\s*\(\s*\)"), "bare .unlock() — use std::lock_guard/unique_lock"),
    (re.compile(r"\bmalloc\s*\("), "malloc in a rank closure — use containers"),
    (re.compile(r"\bfree\s*\("), "free in a rank closure — use containers"),
    (NAKED_NEW, "naked new in a rank closure — leaks when the job throws"),
]


def closure_extent(text: str, open_brace: int) -> int:
    depth = 0
    for i in range(open_brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


def check_submit_closures(path, raw_lines, clean_text, findings):
    """Exception-safety scan of every closure passed to submit()/run():
    the closure body (balanced-brace extent from the lambda's opening
    brace) must not acquire resources that a throw would strand."""
    for m in SUBMIT.finditer(clean_text):
        brace = clean_text.find("{", m.end())
        if brace < 0:
            continue
        end = closure_extent(clean_text, brace)
        body = clean_text[brace : end + 1]
        body_line0 = clean_text.count("\n", 0, brace) + 1
        for pattern, why in UNSAFE_IN_CLOSURE:
            for bm in pattern.finditer(body):
                lineno = body_line0 + body.count("\n", 0, bm.start())
                raw = raw_lines[lineno - 1]
                waiver = waiver_for(raw)
                if waiver and waiver[0] == "submit-closure":
                    if not waiver[1]:
                        findings.error(path, lineno, "submit-closure",
                                       "waiver without a reason")
                    else:
                        findings.note(path, lineno,
                                      f"waived [submit-closure]: {waiver[1]}")
                    continue
                findings.error(path, lineno, "submit-closure", why)


def check_headers(cxx: str, findings) -> bool:
    """Compiles `#include "<header>"` for every header under src/."""
    headers = [p for p in cxx_files(["src"]) if p.endswith(".hpp")]
    ok = True
    with tempfile.TemporaryDirectory() as tmp:
        for header in headers:
            rel = os.path.relpath(header, os.path.join(REPO, "src"))
            tu = os.path.join(tmp, "header_check.cpp")
            with open(tu, "w") as f:
                f.write(f'#include "{rel}"\n')
            cmd = [cxx, "-std=c++20", "-fsyntax-only", "-fopenmp",
                   "-I", os.path.join(REPO, "src"), tu]
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode != 0:
                ok = False
                findings.error(header, 1, "header-compile",
                               "header is not self-contained:\n"
                               + proc.stderr.strip())
    return ok


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--skip-headers", action="store_true",
                    help="skip the compile-each-header check (no compiler needed)")
    ap.add_argument("--cxx", default=os.environ.get("CXX", "g++"),
                    help="compiler for the header check (default: $CXX or g++)")
    args = ap.parse_args()

    findings = Findings()
    for path in cxx_files(ALL_DIRS):
        with open(path, encoding="utf-8") as f:
            text = f.read()
        raw_lines = text.splitlines()
        clean_text = strip_comments_and_strings(text)
        clean_lines = clean_text.splitlines()
        check_raw_shift(path, raw_lines, clean_lines, findings)
        if any(os.path.relpath(path, REPO).startswith(d + os.sep) for d in LIB_DIRS):
            check_naked_new(path, raw_lines, clean_lines, findings)
        if "cluster" in clean_text or "submit" in clean_text:
            check_submit_closures(path, raw_lines, clean_text, findings)

    if not args.skip_headers:
        check_headers(args.cxx, findings)

    for note in findings.notes:
        print(f"note: {note}")
    for err in findings.errors:
        print(f"error: {err}")
    if findings.errors:
        print(f"\nlint: {len(findings.errors)} finding(s)")
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
