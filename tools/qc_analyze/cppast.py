"""Structural C++ frontend for qc-analyze.

A self-contained lexer + balanced-token-tree parser that recovers the
structure the protocol rules need — function/lambda scopes, an
if/loop/switch statement tree with condition token ranges, and call
expressions with split argument lists — without a compiler. It is not a
full C++ parser: it never resolves types or overloads, and it reads
declarations heuristically. That is enough to be *control-flow
accurate* (multi-line lambdas, nested branches, early returns), which
is the whole gap between these rules and a regex linter.

When the libclang Python bindings are available, qc_analyze can swap
this module for a clang-based frontend (`--frontend libclang`); both
produce the same Scope/Stmt/Call surface. This container-independent
frontend is the default so the gate never silently degrades to
"skipped" on machines without libclang.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

# --- lexer ------------------------------------------------------------

# Multi-char operators the rules care about keeping atomic. '<' and '>'
# deliberately stay single-char so template-argument scanning can track
# them; shift operators then lex as two tokens, which no rule minds.
_PUNCT2 = (
    "::", "->", "...", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
)

_ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | set("0123456789")


@dataclass
class Tok:
    kind: str  # 'id' | 'num' | 'str' | 'chr' | 'punct'
    text: str
    line: int


def lex(text: str) -> list[Tok]:
    """Tokenizes C++ source: comments and preprocessor lines vanish,
    string/char literals collapse to one token, line numbers survive."""
    toks: list[Tok] = []
    i, n, line = 0, len(text), 1
    at_line_start = True
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if ch in " \t\r\f\v":
            i += 1
            continue
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
            continue
        if ch == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            seg_end = n if j < 0 else j + 2
            line += text.count("\n", i, seg_end)
            i = seg_end
            continue
        if ch == "#" and at_line_start:
            # Preprocessor directive: skip to end of (continued) line.
            while i < n:
                j = text.find("\n", i)
                if j < 0:
                    i = n
                    break
                if text[j - 1] == "\\" or (text[j - 1] == "\r" and text[j - 2] == "\\"):
                    line += 1
                    i = j + 1
                    continue
                i = j  # leave the newline for the main loop
                break
            continue
        at_line_start = False
        if ch == '"' or (ch == "R" and nxt == '"'):
            if ch == "R":  # raw string R"delim( ... )delim"
                k = text.find("(", i + 2)
                delim = text[i + 2 : k] if k > 0 else ""
                close = ")" + delim + '"'
                j = text.find(close, k + 1)
                j = n if j < 0 else j + len(close)
            else:
                j = i + 1
                while j < n and text[j] != '"':
                    j += 2 if text[j] == "\\" else 1
                j = min(j + 1, n)
            line += text.count("\n", i, j)
            toks.append(Tok("str", text[i:j], line))
            i = j
            continue
        if ch == "'":
            # Char literal. Digit separators (1'000) are consumed by the
            # number scanner before we ever get here.
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            toks.append(Tok("chr", text[i:j], line))
            i = j
            continue
        if ch in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            toks.append(Tok("id", text[i:j], line))
            i = j
            continue
        if ch.isdigit() or (ch == "." and nxt.isdigit()):
            j = i + 1
            while j < n and (text[j] in _ID_CONT or text[j] in ".'" or
                             (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            toks.append(Tok("num", text[i:j], line))
            i = j
            continue
        two = text[i : i + 2]
        three = text[i : i + 3]
        if three in _PUNCT2:
            toks.append(Tok("punct", three, line))
            i += 3
        elif two in _PUNCT2:
            toks.append(Tok("punct", two, line))
            i += 2
        else:
            toks.append(Tok("punct", ch, line))
            i += 1
    return toks


# --- token tree -------------------------------------------------------

_OPEN = {"(": ")", "[": "]", "{": "}"}
_CLOSE = {")", "]", "}"}


@dataclass
class Grp:
    open: str  # '(', '[', '{', or '' for the file-level virtual group
    items: list  # Tok | Grp
    line: int
    close_line: int = 0
    is_lambda_body: bool = False


Element = Tok | Grp


def tree(toks: list[Tok]) -> Grp:
    """Groups tokens into a nested balanced-bracket tree (best effort on
    unbalanced input: stray closers are dropped, EOF closes the rest)."""
    root = Grp("", [], 1)
    stack = [root]
    for t in toks:
        if t.text in _OPEN and t.kind == "punct":
            g = Grp(t.text, [], t.line)
            stack[-1].items.append(g)
            stack.append(g)
        elif t.text in _CLOSE and t.kind == "punct":
            if len(stack) > 1:
                stack[-1].close_line = t.line
                stack.pop()
        else:
            stack[-1].items.append(t)
    while len(stack) > 1:
        stack[-1].close_line = toks[-1].line if toks else 1
        stack.pop()
    return root


def text_of(elements: list[Element] | Grp) -> str:
    """Canonical text of a token run (single spaces, groups re-bracketed);
    used to compare peer/tag expressions structurally."""
    if isinstance(elements, Grp):
        inner = " ".join(text_of([e]) for e in elements.items)
        return f"{elements.open}{inner}{_OPEN.get(elements.open, '')}" if elements.open else inner
    parts = []
    for e in elements:
        if isinstance(e, Grp):
            closer = _OPEN.get(e.open, "")
            parts.append(e.open + " ".join(text_of([x]) for x in e.items) + closer)
        else:
            parts.append(e.text)
    return " ".join(p for p in parts if p)


def iter_tokens(elements: list[Element], skip_lambda_bodies: bool = False) -> Iterator[Tok]:
    for e in elements:
        if isinstance(e, Grp):
            if skip_lambda_bodies and e.is_lambda_body:
                continue
            yield from iter_tokens(e.items, skip_lambda_bodies)
        else:
            yield e


# --- statements -------------------------------------------------------

_JUMPS = {"return", "throw", "break", "continue", "goto"}


@dataclass
class Stmt:
    kind: str  # 'if' | 'loop' | 'switch' | 'block' | 'try' | 'expr' | 'jump' | 'label'
    line: int
    cond: Optional[Grp] = None  # controlling paren group (if/loop/switch)
    children: list["Stmt"] = field(default_factory=list)
    else_children: list["Stmt"] = field(default_factory=list)
    elements: list[Element] = field(default_factory=list)  # expr/jump payload
    jump_word: str = ""


def _elem_line(e: Element) -> int:
    return e.line


def parse_stmts(items: list[Element]) -> list[Stmt]:
    out: list[Stmt] = []
    i = 0
    while i < len(items):
        stmt, i = _parse_one(items, i)
        if stmt is not None:
            out.append(stmt)
    return out


def _parse_one(items: list[Element], i: int) -> tuple[Optional[Stmt], int]:
    if i >= len(items):
        return None, i
    el = items[i]
    line = _elem_line(el)
    if isinstance(el, Tok) and el.kind == "id":
        w = el.text
        if w == "if":
            j = i + 1
            if j < len(items) and isinstance(items[j], Tok) and items[j].text == "constexpr":
                j += 1
            cond = items[j] if j < len(items) and isinstance(items[j], Grp) else None
            body, j2 = _parse_one(items, j + 1)
            st = Stmt("if", line, cond=cond, children=[body] if body else [])
            if j2 < len(items) and isinstance(items[j2], Tok) and items[j2].text == "else":
                els, j3 = _parse_one(items, j2 + 1)
                st.else_children = [els] if els else []
                return st, j3
            return st, j2
        if w in ("for", "while"):
            j = i + 1
            cond = items[j] if j < len(items) and isinstance(items[j], Grp) else None
            body, j2 = _parse_one(items, j + 1)
            return Stmt("loop", line, cond=cond, children=[body] if body else []), j2
        if w == "do":
            body, j = _parse_one(items, i + 1)
            # consume 'while (...)' ';'
            cond = None
            while j < len(items):
                e = items[j]
                if isinstance(e, Grp) and e.open == "(":
                    cond = e
                j += 1
                if isinstance(e, Tok) and e.text == ";":
                    break
            return Stmt("loop", line, cond=cond, children=[body] if body else []), j
        if w == "switch":
            j = i + 1
            cond = items[j] if j < len(items) and isinstance(items[j], Grp) else None
            j += 1
            kids: list[Stmt] = []
            if j < len(items) and isinstance(items[j], Grp) and items[j].open == "{":
                kids = parse_stmts(items[j].items)
                j += 1
            return Stmt("switch", line, cond=cond, children=kids), j
        if w == "try":
            j = i + 1
            kids: list[Stmt] = []
            if j < len(items) and isinstance(items[j], Grp) and items[j].open == "{":
                kids = parse_stmts(items[j].items)
                j += 1
            while (j + 1 < len(items) and isinstance(items[j], Tok) and items[j].text == "catch"
                   and isinstance(items[j + 1], Grp)):
                j += 2
                if j < len(items) and isinstance(items[j], Grp) and items[j].open == "{":
                    kids += parse_stmts(items[j].items)
                    j += 1
            return Stmt("try", line, children=kids), j
        if w in _JUMPS:
            elems, j = _consume_until_semicolon(items, i)
            return Stmt("jump", line, elements=elems, jump_word=w), j
        if w in ("case", "default"):
            j = i + 1
            while j < len(items) and not (isinstance(items[j], Tok) and items[j].text == ":"):
                j += 1
            return Stmt("label", line), j + 1
        if w == "else":  # stray (shouldn't happen) — skip
            return None, i + 1
    if isinstance(el, Grp) and el.open == "{":
        return Stmt("block", line, children=parse_stmts(el.items)), i + 1
    if isinstance(el, Tok) and el.text == ";":
        return None, i + 1
    elems, j = _consume_until_semicolon(items, i)
    return Stmt("expr", line, elements=elems), j


def _consume_until_semicolon(items: list[Element], i: int) -> tuple[list[Element], int]:
    elems: list[Element] = []
    while i < len(items):
        e = items[i]
        i += 1
        if isinstance(e, Tok) and e.text == ";":
            break
        elems.append(e)
    return elems, i


# --- scopes (functions and lambdas) -----------------------------------

_CTRL = {"if", "for", "while", "switch", "do", "else", "catch", "return", "throw"}
_LAMBDA_SPECIFIERS = {"mutable", "noexcept", "constexpr", "->", "const"}


@dataclass
class Scope:
    kind: str  # 'function' | 'lambda'
    name: str
    qual: str
    file: str
    line: int
    body: Grp
    params_text: str = ""
    parent: Optional["Scope"] = None
    stmts: list[Stmt] = field(default_factory=list)
    sites: list["Site"] = field(default_factory=list)


@dataclass
class CondInfo:
    kind: str  # 'if' | 'loop' | 'switch' | 'after-exit'
    line: int
    cond: Optional[Grp]
    jump_word: str = ""  # for 'after-exit': the jump that created it


@dataclass
class Site:
    stmt: Stmt
    ctx: tuple[CondInfo, ...]


def parse_file(path: str, text: str) -> list[Scope]:
    """Returns every function and lambda scope in the file, statement
    trees parsed and control contexts attached."""
    top = tree(lex(text))
    scopes: list[Scope] = []
    _walk_outer(top.items, [], path, scopes)
    for sc in scopes if True else []:
        pass
    # Lambdas are discovered per function body, appended to `scopes`
    # inside _finish_scope via the worklist below.
    result: list[Scope] = []
    work = list(scopes)
    while work:
        sc = work.pop(0)
        result.append(sc)
        work.extend(_finish_scope(sc))
    return result


def _walk_outer(items: list[Element], ctx: list[str], path: str, scopes: list[Scope]) -> None:
    head_start = 0
    i = 0
    while i < len(items):
        el = items[i]
        if isinstance(el, Tok) and el.text == ";":
            head_start = i + 1
        elif isinstance(el, Grp) and el.open == "{":
            head = items[head_start:i]
            kw, name = _head_keyword(head)
            if kw == "namespace":
                _walk_outer(el.items, ctx + ([name] if name else []), path, scopes)
            elif kw == "class":
                _walk_outer(el.items, ctx + ([name] if name else []), path, scopes)
            elif kw == "enum":
                pass
            else:
                fn = _match_function(head)
                if fn is not None:
                    fname, params, fline = fn
                    scopes.append(Scope(
                        kind="function", name=fname,
                        qual="::".join(ctx + [fname]) if ctx else fname,
                        file=path, line=fline, body=el,
                        params_text=text_of(params.items)))
                # else: braced initializer / array data — ignore.
            head_start = i + 1
        i += 1


def _head_keyword(head: list[Element]) -> tuple[str, str]:
    """Classifies a pre-brace head as namespace/class/enum, returning the
    declared name, or ('', '') when it is neither."""
    for j, e in enumerate(head):
        if isinstance(e, Tok) and e.kind == "id":
            if e.text == "namespace":
                for k in range(j + 1, len(head)):
                    t = head[k]
                    if isinstance(t, Tok) and t.kind == "id":
                        return "namespace", t.text
                return "namespace", ""
            if e.text in ("class", "struct", "union"):
                # `struct X {` / `class X final : Base {`; but a head like
                # `const struct Foo make()` would be a function — only
                # classify as class when no param group follows the name.
                if _match_function(head) is not None:
                    return "", ""
                for k in range(j + 1, len(head)):
                    t = head[k]
                    if isinstance(t, Tok) and t.kind == "id" and t.text not in ("final", "alignas"):
                        return "class", t.text
                return "class", ""
            if e.text == "enum":
                return "enum", ""
    return "", ""


def _match_function(head: list[Element]) -> Optional[tuple[str, Grp, int]]:
    """(name, param-group, line) when the head reads as a function
    definition: an identifier directly followed by a paren group, with no
    top-level '=' before it (rules out `auto x = f(...)`-style data)."""
    for j, e in enumerate(head):
        if isinstance(e, Tok) and e.kind == "punct" and e.text == "=":
            return None
        if isinstance(e, Grp) and e.open == "(" and j > 0:
            prev = head[j - 1]
            if isinstance(prev, Tok) and prev.kind == "id" and prev.text not in _CTRL:
                return prev.text, e, prev.line
            return None
    return None


def _finish_scope(sc: Scope) -> list[Scope]:
    """Parses a scope body: statement tree, lambda child scopes, and the
    flat site list with control contexts."""
    lambdas = _mark_lambdas(sc.body.items, sc)
    sc.stmts = parse_stmts(sc.body.items)
    sc.sites = []
    _collect_sites(sc.stmts, (), sc.sites)
    # Attribute each lambda's body line for its Scope record.
    return lambdas


def _mark_lambdas(items: list[Element], parent: Scope) -> list[Scope]:
    """Finds lambda expressions anywhere under `items` (not descending
    into bodies already claimed by an inner lambda), marks their body
    groups, and returns child Scopes."""
    found: list[Scope] = []
    _scan_lambdas(items, parent, found)
    return found


def _scan_lambdas(items: list[Element], parent: Scope, found: list[Scope]) -> None:
    i = 0
    while i < len(items):
        e = items[i]
        if isinstance(e, Grp) and e.open == "[" and _starts_lambda(items, i):
            body_idx, params = _lambda_body_index(items, i)
            if body_idx is not None:
                body = items[body_idx]
                body.is_lambda_body = True
                found.append(Scope(
                    kind="lambda", name=f"<lambda:{e.line}>",
                    qual=f"{parent.qual}::<lambda:{e.line}>",
                    file=parent.file, line=e.line, body=body,
                    params_text=params, parent=parent))
                # Captures and params may contain nested lambdas; the body
                # belongs to the child scope (scanned when it is finished).
                _scan_lambdas(e.items, parent, found)
                if params:
                    pass
                i = body_idx + 1
                continue
        if isinstance(e, Grp):
            if not e.is_lambda_body:
                _scan_lambdas(e.items, parent, found)
        i += 1


def _starts_lambda(items: list[Element], i: int) -> bool:
    """A '[' group is a lambda intro (not a subscript) when it is not a
    postfix of the previous element."""
    if i == 0:
        return True
    prev = items[i - 1]
    if isinstance(prev, Grp):
        return prev.open == "{"  # `}` then `[` — block then lambda (rare)
    if prev.kind in ("id", "num", "str"):
        return False
    return prev.text not in (")", "]", ">")


def _lambda_body_index(items: list[Element], i: int) -> tuple[Optional[int], str]:
    """Given items[i] = capture group, finds the '{' body group of the
    lambda, tolerating a parameter list and specifiers in between."""
    params = ""
    j = i + 1
    budget = 12  # specifier/trailing-return tokens between ']' and '{'
    while j < len(items) and budget > 0:
        e = items[j]
        if isinstance(e, Grp):
            if e.open == "{":
                return j, params
            if e.open == "(" and not params:
                params = text_of(e.items)
            elif e.open not in ("(", "["):
                return None, params
        else:
            if e.text == ";" or e.text == ",":
                return None, params
        j += 1
        budget -= 1
    return None, params


def _collect_sites(stmts: list[Stmt], ctx: tuple[CondInfo, ...], out: list[Site]) -> None:
    extra: tuple[CondInfo, ...] = ()
    for st in stmts:
        cur = ctx + extra
        if st.kind in ("expr", "jump", "label"):
            out.append(Site(st, cur))
        elif st.kind == "if":
            ci = CondInfo("if", st.line, st.cond)
            _emit_cond_site(st, cur, out)
            _collect_sites(st.children, cur + (ci,), out)
            _collect_sites(st.else_children, cur + (ci,), out)
            jw = _branch_jump(st.children)
            jw_else = _branch_jump(st.else_children)
            # `if (divergent) return;` makes everything after divergent
            # too — record the exit so rules can judge the condition.
            if jw and not st.else_children:
                extra = extra + (CondInfo("after-exit", st.line, st.cond, jump_word=jw),)
            elif jw_else and not jw:
                extra = extra + (CondInfo("after-exit", st.line, st.cond, jump_word=jw_else),)
        elif st.kind == "loop":
            _emit_cond_site(st, cur, out)
            _collect_sites(st.children, cur + (CondInfo("loop", st.line, st.cond),), out)
        elif st.kind == "switch":
            _emit_cond_site(st, cur, out)
            _collect_sites(st.children, cur + (CondInfo("switch", st.line, st.cond),), out)
        elif st.kind in ("block", "try"):
            _collect_sites(st.children, cur, out)


def _emit_cond_site(st: Stmt, ctx: tuple[CondInfo, ...], out: list[Site]) -> None:
    """Condition expressions are call sites too (`if (c.allreduce_sum(x))`),
    so rules see them as a pseudo-site under the *enclosing* contexts."""
    if st.cond is not None:
        out.append(Site(Stmt("cond", st.line, elements=[st.cond]), ctx))


def _branch_jump(stmts: list[Stmt]) -> str:
    """Jump word ('return'/'throw'/...) when the branch unconditionally
    exits: a direct jump statement, possibly inside plain blocks."""
    for st in stmts:
        if st.kind == "jump" and st.jump_word in ("return", "throw", "continue", "break"):
            return st.jump_word
        if st.kind in ("block", "try"):
            w = _branch_jump(st.children)
            if w:
                return w
    return ""


# --- call expressions -------------------------------------------------

@dataclass
class Call:
    name: str
    line: int
    args: list[list[Element]]
    recv: str  # receiver chain text before the name ('' for free calls)
    sep: str  # '.', '->', '::', or ''
    templated: bool = False


def iter_calls(elements: list[Element], skip_lambda_bodies: bool = True) -> Iterator[Call]:
    """Yields every NAME(...) / obj.NAME(...) / obj->NAME<T>(...) call in
    the token run, recursing into argument groups. Lambda bodies are
    skipped by default — they are separate scopes with their own sites."""
    i = 0
    while i < len(elements):
        e = elements[i]
        if isinstance(e, Grp):
            if not (skip_lambda_bodies and e.is_lambda_body):
                yield from iter_calls(e.items, skip_lambda_bodies)
            i += 1
            continue
        if e.kind == "id" and e.text not in _CTRL:
            j, templated = i + 1, False
            if (j < len(elements) and isinstance(elements[j], Tok)
                    and elements[j].text == "<"):
                j2 = _scan_template_args(elements, j)
                if j2 is not None:
                    j, templated = j2, True
            if j < len(elements) and isinstance(elements[j], Grp) and elements[j].open == "(":
                grp: Grp = elements[j]
                recv, sep = _receiver_chain(elements, i)
                yield Call(name=e.text, line=e.line, args=_split_args(grp.items),
                           recv=recv, sep=sep, templated=templated)
                # arguments may hold nested calls — recurse explicitly so
                # the group is not skipped by the linear walk
                yield from iter_calls(grp.items, skip_lambda_bodies)
                i = j + 1
                continue
        i += 1


def _scan_template_args(elements: list[Element], i: int) -> Optional[int]:
    """elements[i] is '<'. Returns the index just past the matching '>'
    of a plausible template-argument list, else None."""
    depth = 0
    budget = 48
    while i < len(elements) and budget > 0:
        e = elements[i]
        if isinstance(e, Tok):
            if e.text == "<":
                depth += 1
            elif e.text == ">":
                depth -= 1
                if depth == 0:
                    return i + 1
            elif e.text in (";", "&&", "||") or e.kind == "str":
                return None
        elif e.open == "{":
            return None
        i += 1
        budget -= 1
    return None


def _receiver_chain(elements: list[Element], i: int) -> tuple[str, str]:
    """Collects the `a.b->c::` chain ending just before elements[i]."""
    if i == 0:
        return "", ""
    sep_tok = elements[i - 1]
    if not (isinstance(sep_tok, Tok) and sep_tok.text in (".", "->", "::")):
        return "", ""
    sep = sep_tok.text
    j = i - 1
    parts: list[str] = []
    while j > 0:
        s = elements[j]
        if not (isinstance(s, Tok) and s.text in (".", "->", "::")):
            break
        obj = elements[j - 1]
        if isinstance(obj, Grp):
            parts.append(text_of([obj]))
            j -= 2
        elif isinstance(obj, Tok) and obj.kind in ("id", "num"):
            parts.append(s.text if len(parts) else "")
            parts.append(obj.text)
            j -= 2
        else:
            break
    parts.reverse()
    return "".join(p for p in parts if p), sep


def _split_args(items: list[Element]) -> list[list[Element]]:
    args: list[list[Element]] = []
    cur: list[Element] = []
    depth = 0
    for e in items:
        if isinstance(e, Tok):
            if e.text == "<":
                depth += 1
            elif e.text == ">":
                depth = max(0, depth - 1)
            elif e.text == "," and depth == 0:
                args.append(cur)
                cur = []
                continue
        cur.append(e)
    if cur or args:
        args.append(cur)
    return args
