// qc-analyze: treat-as src/obs/fixture.cpp
// Fixture corpus: rule atomic-order (relaxed loads of atomics whose
// store side publishes with memory_order_release — the reader is not
// guaranteed to see the published object's contents). Never compiled —
// analyzer input only.
#include <atomic>
#include <cstdint>

struct Widget;
struct Config;
struct Table;

namespace {
std::atomic<Widget*> g_widget{nullptr};
std::atomic<bool> g_flag{false};
std::atomic<Config*> g_config{nullptr};
std::atomic<std::uint64_t> g_hits{0};
std::atomic<bool> g_ready{false};
std::atomic<Table*> g_table{nullptr};
}  // namespace

// --- positives --------------------------------------------------------

// Classic publish/subscribe tear: release store, relaxed read.
void publish_widget(Widget* w) {
  g_widget.store(w, std::memory_order_release);
}
Widget* peek_widget() {
  return g_widget.load(std::memory_order_relaxed);  // expect: atomic-order
}

// exchange() with release ordering is a publishing write too.
bool swap_flag() {
  return g_flag.exchange(true, std::memory_order_release);
}
bool peek_flag() {
  return g_flag.load(std::memory_order_relaxed);  // expect: atomic-order
}

// Scoped-enumerator spelling of the orders.
void publish_config(Config* c) {
  g_config.store(c, std::memory_order::release);
}
Config* peek_config() {
  return g_config.load(std::memory_order::relaxed);  // expect: atomic-order
}

// --- negatives --------------------------------------------------------

// A pure counter: relaxed on both sides is the right ordering.
void count_hit() {
  g_hits.fetch_add(1, std::memory_order_relaxed);
}
std::uint64_t hits() {
  return g_hits.load(std::memory_order_relaxed);
}

// The writer uses the (seq_cst) default, not release: out of scope for
// this rule.
void set_ready() {
  g_ready.store(true);
}
bool ready_relaxed_poll() {
  return g_ready.load(std::memory_order_relaxed);
}

// Correctly paired release/acquire.
void publish_table(Table* t) {
  g_table.store(t, std::memory_order_release);
}
Table* read_table() {
  return g_table.load(std::memory_order_acquire);
}
