// qc-analyze: treat-as tests/fixture.cpp
// Fixture corpus: rule collective-divergence. Seeded positives carry
// `expect:` markers; everything else must stay clean (false positives
// here fail tests/test_qc_analyze.py). Never compiled — analyzer input.
#include <span>
#include <vector>

#include "cluster/cluster.hpp"

using qc::cluster::Comm;
using index_t = long long;

void log_line(const char* msg);

// --- positives --------------------------------------------------------

// Direct rank condition: only rank 0 arrives, everyone else deadlocks.
void direct_divergence(Comm& comm) {
  if (comm.rank() == 0) {
    comm.barrier();  // expect: collective-divergence
  }
}

// Data-dependent: `leader` is computed from rank(), so the condition is
// rank-divergent even though rank() never appears in it.
void data_dependent_divergence(Comm& comm, std::span<double> all) {
  const int leader = comm.rank() % 2;
  std::vector<double> local(4, 0.0);
  if (leader == 0) {
    comm.allgather<double>(local, all);  // expect: collective-divergence
  }
}

// Early exit: ranks != 0 return before the broadcast, so the collective
// below the guard is divergent even though it looks unconditional.
void early_exit_divergence(Comm& comm, std::span<index_t> out) {
  if (comm.rank() != 0) return;
  comm.broadcast<index_t>(0, out);  // expect: collective-divergence
}

// Switch on the rank: only the 0 arm reaches the barrier.
void switch_divergence(Comm& comm) {
  switch (comm.rank()) {
    case 0:
      comm.barrier();  // expect: collective-divergence
      break;
    default:
      break;
  }
}

// One-level wrapper: sync_everyone() is a plain helper whose body is a
// barrier, so calling it under a rank condition is the same deadlock.
void sync_everyone(Comm& comm) { comm.barrier(); }

void wrapper_divergence(Comm& comm) {
  if (comm.rank() == 0) {
    sync_everyone(comm);  // expect: collective-divergence
  }
}

// --- negatives --------------------------------------------------------

// Rank-uniform condition: every rank sees the same size().
void size_guarded_barrier(Comm& comm) {
  if (comm.size() > 1) comm.barrier();
}

// Divergent branch does no communication; the barrier after it is
// reached by every rank.
void divergent_logging_uniform_barrier(Comm& comm) {
  if (comm.rank() == 0) log_line("leader checkpointing");
  comm.barrier();
}

// Loop over roots: the bound is size(), uniform across ranks, so each
// iteration's broadcast is executed by everyone.
void all_roots_broadcast(Comm& comm, std::span<double> data) {
  for (int root = 0; root < comm.size(); ++root) {
    comm.broadcast<double>(root, data);
  }
}

// Rank-dependent control flow around pure compute is fine.
void rank_partitioned_compute(Comm& comm, std::span<double> chunk) {
  if (comm.rank() % 2 == 0) {
    for (double& v : chunk) v *= 2.0;
  }
  const double total = comm.allreduce_sum(chunk.empty() ? 0.0 : chunk[0]);
  (void)total;
}
