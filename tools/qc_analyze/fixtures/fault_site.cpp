// qc-analyze: treat-as src/sim/fixture.cpp
// Fixture corpus: rule fault-site (library communication call sites must
// be dominated by a named fault_point so the fault campaign can reach
// them). The treat-as pragma places this file under src/, where the rule
// applies. Never compiled — analyzer input only.
#include <cstddef>
#include <span>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/fault.hpp"

using qc::cluster::Comm;

void accumulate(std::span<double> chunk);
int peer_of(Comm& comm);

// --- positives --------------------------------------------------------

// No fault_point anywhere in the scope: the campaign cannot inject
// aborts/delays/timeouts into this exchange.
void chunk_exchange(Comm& comm, std::span<double> chunk) {
  const int partner = comm.rank() ^ 1;
  comm.send<double>(partner, chunk, 2);  // expect: fault-site
  accumulate(chunk);
  comm.recv<double>(partner, chunk, 2);  // expect: fault-site
}

// fault_point placed after the first communication call: the send above
// it is still uninstrumented (the recv below is covered).
void late_instrumentation(Comm& comm, std::span<const std::byte> out,
                          std::span<std::byte> in) {
  comm.send_bytes(1, out, 4);  // expect: fault-site
  qc::cluster::fault_point("sim.late_exchange", comm.rank());
  comm.recv_bytes(1, in, 4);
}

// The closure runs on a rank thread: a fault_point in the submitting
// function's scope does not dominate the communication inside it.
void exchange_via_job(qc::cluster::ClusterSession& session) {
  qc::cluster::fault_point("sim.submit", 0);
  session.submit([](Comm& comm) {
    std::vector<double> buf(8, 0.0);
    comm.send<double>(peer_of(comm), buf, 9);  // expect: fault-site
    accumulate(buf);
    comm.recv<double>(peer_of(comm), buf, 9);  // expect: fault-site
  });
}

// --- negatives --------------------------------------------------------

// fault_point ahead of the communication: the campaign can reach it.
void instrumented_exchange(Comm& comm, std::span<const double> out,
                           std::span<double> in) {
  qc::cluster::fault_point("sim.fixture_exchange", comm.rank());
  comm.sendrecv<double>(comm.rank() ^ 1, out, in, 3);
}

// Transport wrappers are the layer the fault campaign injects *into*;
// a scope named after one is exempt.
struct ByteLink {
  Comm& raw_;
  void send_bytes(int dst, std::span<const std::byte> data, int tag) {
    raw_.send_bytes(dst, data, tag);
  }
};

// No communication at all: nothing to instrument.
void pure_compute(std::span<double> chunk) {
  for (double& v : chunk) v = v * v;
}
