// qc-analyze: treat-as tests/fixture.cpp
// Fixture corpus: rules p2p-unmatched, p2p-sendrecv, p2p-tag-collision.
// Seeded positives carry `expect:` markers; everything else must stay
// clean. Never compiled — analyzer input only.
#include <cstddef>
#include <span>
#include <vector>

#include "cluster/cluster.hpp"

using qc::cluster::Comm;

// --- p2p-unmatched: positives ----------------------------------------

// The tags disagree, so neither side ever completes: the send's payload
// waits under tag 3 while the recv blocks on tag 4.
void mismatched_tags(Comm& comm, std::span<double> buf) {
  const int partner = comm.rank() ^ 1;
  comm.send<double>(partner, buf, 3);  // expect: p2p-unmatched
  comm.recv<double>(partner, buf, 4);  // expect: p2p-unmatched
}

// A recv with no send anywhere in the job: blocks until abort/timeout.
void recv_without_send(Comm& comm, std::span<int> buf) {
  if (comm.rank() != 0) {
    comm.recv<int>(0, buf);  // expect: p2p-unmatched
  }
}

// --- p2p-unmatched: negatives ----------------------------------------

// Cross-branch matched: root sends under tag 11, leaves recv tag 11.
void root_scatter(Comm& comm, std::span<const float> parts, std::span<float> mine) {
  const std::size_t block = mine.size();
  if (comm.rank() == 0) {
    for (int r = 1; r < comm.size(); ++r) {
      comm.send<float>(r, parts.subspan(static_cast<std::size_t>(r) * block, block), 11);
    }
  } else {
    comm.recv<float>(0, mine, 11);
  }
}

// sendrecv is matched by construction.
void symmetric_exchange(Comm& comm, std::span<const double> out, std::span<double> in) {
  comm.sendrecv<double>(comm.rank() ^ 1, out, in, 12);
}

// --- p2p-sendrecv: positives -----------------------------------------

// Send-then-recv head to head with the same peer and tag: correct under
// the eager transport, a deadlock under a rendezvous one.
void head_to_head_default_tag(Comm& comm, std::span<double> buf) {
  const int partner = comm.rank() ^ 1;
  comm.send<double>(partner, buf);  // expect: p2p-sendrecv
  comm.recv<double>(partner, buf);
}

void head_to_head_tagged(Comm& comm, std::span<int> out, std::span<int> in) {
  comm.send<int>(comm.rank() ^ 2, out, 5);  // expect: p2p-sendrecv
  comm.recv<int>(comm.rank() ^ 2, in, 5);
}

void head_to_head_in_branch(Comm& comm, std::span<float> buf) {
  if (comm.size() == 2) {
    comm.send_bytes(1, std::as_bytes(buf), 8);  // expect: p2p-sendrecv
    comm.recv_bytes(1, std::as_writable_bytes(buf), 8);
  }
}

// --- p2p-sendrecv: negatives -----------------------------------------

// Different peers: a ring shift, not a head-to-head exchange.
void ring_shift(Comm& comm, std::span<const double> out, std::span<double> in) {
  const int next = (comm.rank() + 1) % comm.size();
  const int prev = (comm.rank() + comm.size() - 1) % comm.size();
  comm.send<double>(next, out, 9);
  comm.recv<double>(prev, in, 9);
}

// All-sends-then-all-recvs across loops (the distributed state vector's
// exchange pattern): deliberate pipelining, not an adjacent pair.
void pipelined_exchange(Comm& comm, std::span<const double> out_parts,
                        std::span<double> in_parts) {
  const std::size_t block = in_parts.size() / static_cast<std::size_t>(comm.size());
  for (int r = 0; r < comm.size(); ++r) {
    if (r != comm.rank()) {
      comm.send<double>(r, out_parts.subspan(static_cast<std::size_t>(r) * block, block), 6);
    }
  }
  for (int r = 0; r < comm.size(); ++r) {
    if (r != comm.rank()) {
      comm.recv<double>(r, in_parts.subspan(static_cast<std::size_t>(r) * block, block), 6);
    }
  }
}

// --- p2p-tag-collision: positives ------------------------------------

// Application traffic on the runtime's reserved tag corrupts collective
// internals (and vice versa).
void reserved_tag_literal(Comm& comm, std::span<int> buf) {
  const int next = (comm.rank() + 1) % comm.size();
  const int prev = (comm.rank() + comm.size() - 1) % comm.size();
  comm.send<int>(next, buf, -7771);  // expect: p2p-tag-collision
  comm.recv<int>(prev, buf, -7771);  // expect: p2p-tag-collision
}

void reserved_tag_offset(Comm& comm, std::span<std::byte> raw, int kCollectiveTag) {
  comm.send_bytes(1, raw, kCollectiveTag - 1);  // expect: p2p-tag-collision
  comm.recv_bytes(2, raw, kCollectiveTag - 1);  // expect: p2p-tag-collision
}

// --- p2p-tag-collision: negatives ------------------------------------
// (Application tags 0, 7 and a computed non-negative tag.)

void app_tags(Comm& comm, std::span<double> buf, int round) {
  const int partner = comm.rank() ^ 1;
  comm.send<double>(partner, buf, 7);
  std::vector<double> scratch(buf.size(), 0.0);
  comm.recv<double>(partner, std::span<double>(scratch), 7);
  comm.send<double>(partner, buf, round * 2);
  for (double& v : scratch) v += 1.0;
  comm.recv<double>(partner, buf, round * 2);
}
