// qc-analyze: treat-as src/engine/fixture.cpp
// Fixture corpus: rule span-discipline (engine/sched/cluster code that
// emits counters must do so inside an obs span or mark the event with
// an instant, so the metric lands in a traceable context). Never
// compiled — analyzer input only.
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

// --- positives --------------------------------------------------------

// A counter with no span, no instant, no interval: orphaned metric.
void bump_queue_depth(int n) {
  qc::obs::counter_add("engine.queue_depth", n);  // expect: span-discipline
}

// Both counters in the scope are orphaned: one finding per counter.
void tally_flush(int pages, int bytes) {
  qc::obs::counter_add("engine.flush.pages", pages);  // expect: span-discipline
  qc::obs::counter_add("engine.flush.bytes", bytes);  // expect: span-discipline
}

// A lambda is its own scope; neither it nor its enclosing function
// opens a span, so the counter inside it is orphaned too.
void counter_in_naked_lambda(std::vector<int>& xs) {
  auto note = [](int v) { qc::obs::counter_add("engine.xs", v); };  // expect: span-discipline
  for (int x : xs) note(x);
}

// --- negatives --------------------------------------------------------

// Counter under an open span in the same scope.
void counted_sweep(std::vector<double>& buf) {
  qc::obs::Span span("engine.sweep");
  for (double& v : buf) v *= 2.0;
  qc::obs::counter_add("engine.sweep.elems", static_cast<long long>(buf.size()));
}

// An instant marks the event the counter belongs to.
void record_retry(int attempt) {
  qc::obs::instant("engine.retry");
  qc::obs::counter_add("engine.retries", 1);
  (void)attempt;
}

// The enclosing function's span covers the lambda (ancestor evidence).
void counter_under_parent_span(std::vector<int>& xs) {
  qc::obs::Span span("engine.noted_sweep");
  auto note = [](int v) { qc::obs::counter_add("engine.noted.xs", v); };
  for (int x : xs) note(x);
}

// Interval emission is span-equivalent evidence.
void flush_interval(double t0, double t1) {
  qc::obs::emit_interval("engine.flush", t0, t1);
  qc::obs::counter_add("engine.flushes", 1);
}
