// qc-analyze: treat-as tests/fixture.cpp
// Fixture corpus: rule submit-closure (closures handed to
// ClusterSession::submit/run execute on rank threads where a throw
// unwinds through abort/recovery; anything acquired must release
// itself). The AST version also sees through same-file helpers called
// from the closure — the case the old regex rule could not reach.
// Never compiled — analyzer input only.
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "cluster/cluster.hpp"

using qc::cluster::ClusterSession;
using qc::cluster::Comm;

// Same-file helper with a hidden allocation: calling it from a closure
// must be flagged at the allocation, attributed via the helper.
void fill_scratch(double** out, std::size_t n) {
  *out = static_cast<double*>(malloc(n * sizeof(double)));  // expect: submit-closure
}

void scale_buffer(std::vector<double>& buf, int k) {
  for (double& v : buf) v *= static_cast<double>(k);
}

// --- positives --------------------------------------------------------

void closure_locks_mutex(ClusterSession& session, std::mutex& m,
                         std::vector<int>& acc) {
  session.submit([&](Comm& comm) {
    m.lock();  // expect: submit-closure
    acc.push_back(comm.rank());
    m.unlock();  // expect: submit-closure
  });
}

void closure_naked_new(ClusterSession& session) {
  session.submit([](Comm&) {
    auto* scratch = new double[64];  // expect: submit-closure
    scratch[0] = 1.0;
    delete[] scratch;
  });
}

void closure_calls_unsafe_helper(ClusterSession& session) {
  session.submit([](Comm&) {
    double* buf = nullptr;
    fill_scratch(&buf, 32);
    free(buf);  // expect: submit-closure
  });
}

// --- negatives --------------------------------------------------------

// RAII lock: releases itself when the job throws.
void closure_raii_lock(ClusterSession& session, std::mutex& m,
                       std::vector<int>& acc) {
  session.submit([&](Comm& comm) {
    const std::lock_guard<std::mutex> hold(m);
    acc.push_back(comm.rank());
  });
}

// Containers and unique_ptr own their memory through an unwind.
void closure_uses_containers(ClusterSession& session) {
  session.run([](Comm& comm) {
    std::vector<double> scratch(64, 0.0);
    auto owned = std::make_unique<double[]>(16);
    scratch[0] = static_cast<double>(comm.rank());
    owned[0] = scratch[0];
  });
}

// The rule is about rank closures: a bare lock outside submit()/run()
// is not its business (other review gates handle that).
void lock_outside_closure(std::mutex& m) {
  m.lock();
  m.unlock();
}

// Calling a clean helper from a closure is fine.
void closure_calls_safe_helper(ClusterSession& session,
                               std::vector<double>& out) {
  session.submit([&out](Comm& comm) { scale_buffer(out, comm.size()); });
}
