// qc-analyze: treat-as tests/fixture.cpp
// Fixture corpus: waiver syntax round-trip. Expectations for this file
// are asserted explicitly by tests/test_qc_analyze.py rather than via
// `expect:` markers, because the waiver comments themselves occupy the
// trailing-comment position. Never compiled — analyzer input only.
#include "cluster/cluster.hpp"

using qc::cluster::Comm;

// A waiver with a reason downgrades the finding to a note.
void waived_divergence(Comm& comm) {
  if (comm.rank() == 0)
    comm.barrier();  // lint:allow(collective-divergence) -- fixture: waiver with a reason becomes a note
}

// A waiver without a reason is itself an error.
void reasonless_waiver(Comm& comm) {
  if (comm.rank() == 0)
    comm.barrier();  // lint:allow(collective-divergence)
}

// A waiver naming a different rule does not suppress this one.
void wrong_rule_waiver(Comm& comm) {
  if (comm.rank() == 0)
    comm.barrier();  // lint:allow(raw-shift) -- wrong rule: must not suppress the divergence
}

// The waiver may sit on the line directly above the finding.
void waiver_on_line_above(Comm& comm) {
  if (comm.rank() == 0) {
    // lint:allow(collective-divergence) -- fixture: waiver on the preceding line
    comm.barrier();
  }
}

// No waiver at all: plain error.
void unwaived_divergence(Comm& comm) {
  if (comm.rank() == 0)
    comm.barrier();
}
