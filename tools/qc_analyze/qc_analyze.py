#!/usr/bin/env python3
"""qc-analyze — SPMD protocol static analyzer for the cluster runtime.

Walks every translation unit (discovered from a CMake
compile_commands.json, or an explicit path list) and checks the
protocol discipline of the `qc::cluster::Comm` / `ClusterSession` API —
the bug classes that stop being in-process hangs and become silent
multi-node deadlocks once the transport is pluggable:

  collective-divergence  a collective (barrier/broadcast/allgather/
                         alltoall/alltoallv/allreduce_*/sync) reached
                         only under a rank-dependent condition — a
                         condition reading rank()/rank_, or any value
                         data-dependent on them — deadlocks the ranks
                         that skip it. Early `return`/`continue` under a
                         rank-dependent condition divergences everything
                         after it, and one-level wrappers around a
                         collective (unambiguous names only) count too.

  p2p-unmatched          a send whose (tag) has no recv counterpart in
                         the same scope, or vice versa. Matching is
                         cross-branch (root sends / others recv inside
                         one function is matched); a pair deliberately
                         split across submit() jobs needs a reasoned
                         waiver.

  p2p-sendrecv           an adjacent send-then-recv to the same peer
                         with the same tag — correct under this eager
                         transport, a head-to-head deadlock under a
                         rendezvous one. Use Comm::sendrecv.

  p2p-tag-collision      application code using the reserved collective
                         tag range (kCollectiveTag and below); colliding
                         with collective-internal traffic corrupts both.

  fault-site             a Comm communication call in library code not
                         preceded by a named cluster::fault_point(...)
                         in its scope — an uninstrumented path the fault
                         campaign cannot exercise (CONTRIBUTING rule).

  atomic-order           a relaxed load of an atomic object whose
                         writers publish with memory_order_release (the
                         Tracer::current() bug class): the load must be
                         acquire to see the released stores' effects.

  span-discipline        an engine/sched/cluster function that emits
                         obs counters without opening any obs span (or
                         instant) — metrics that land outside every
                         traceable context.

  submit-closure         AST-accurate version of the lint.py rule:
                         closures handed to submit()/run() execute on
                         rank threads where a throw unwinds through
                         abort/recovery — bare .lock()/.unlock(),
                         malloc/free and naked new are rejected, in the
                         closure itself, in lambdas nested inside it,
                         and in same-file helper functions it calls.

Findings carry file:line, a rule id and a fix-it hint, and honor the
repo-wide waiver syntax on the finding line (or the line above):

    foo();  // lint:allow(<rule>) -- reason

Waivers require a reason and are reported as notes.

Frontends: the default `builtin` frontend (cppast.py) is a
dependency-free structural C++ parser — control-flow accurate for
these rules and runnable in any container. `--frontend libclang` is
gated on the clang Python bindings, which this toolchain does not
ship; requesting it without them is an environment error (exit 2),
never a silent skip.

Usage:
  qc_analyze.py -p build                      # TUs from compile db
  qc_analyze.py --paths src tests             # explicit roots
  qc_analyze.py -p build --json out.json      # machine-readable
Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import cppast  # noqa: E402

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

RULES = {
    "collective-divergence": "collective reached under rank-dependent control flow",
    "p2p-unmatched": "send/recv without a tag-matched counterpart in scope",
    "p2p-sendrecv": "adjacent symmetric send/recv — use sendrecv",
    "p2p-tag-collision": "application p2p on the reserved collective tag range",
    "fault-site": "communication call without a named fault_point",
    "atomic-order": "relaxed load paired with release stores",
    "span-discipline": "obs counter emitted outside any span",
    "submit-closure": "unsafe resource acquisition in a rank closure",
}

COLLECTIVES = {
    "barrier", "broadcast", "allgather", "alltoall", "alltoallv",
    "allreduce_sum", "allreduce_max", "sync",
}
P2P = {"send", "recv", "send_bytes", "recv_bytes", "sendrecv"}
# Scopes *implementing* the transport primitives: exempt from the p2p
# and fault-site rules (they are the layer those rules reason about).
TRANSPORT_WRAPPERS = P2P
RANK_PARAMS = {"rank", "my_rank", "rank_id"}
# Tag argument index per primitive (Comm API: peer is always arg 0).
TAG_ARG = {"send": 2, "recv": 2, "send_bytes": 2, "recv_bytes": 2, "sendrecv": 3}

ALLOW = re.compile(r"lint:allow\(([a-z0-9-]+)\)\s*(?:--|—)?\s*(.*)")
TREAT_AS = re.compile(r"qc-analyze:\s*treat-as\s+(\S+)")
IDENT = re.compile(r"[A-Za-z_]\w*")

DEFAULT_DIRS = ["src", "tools", "tests", "bench", "examples"]
FIXTURE_DIR = os.path.join("tools", "qc_analyze", "fixtures")


@dataclass
class Finding:
    rule: str
    file: str
    line: int
    message: str
    hint: str
    waived: bool = False
    reason: str = ""


@dataclass
class Unit:
    path: str  # repo-relative, '/' separators
    text: str
    raw_lines: list[str]
    scopes: list[cppast.Scope] = field(default_factory=list)
    scope_by_body: dict[int, cppast.Scope] = field(default_factory=dict)
    effective: str = ""  # path used for rule-scoping decisions

    @property
    def is_lib(self) -> bool:
        return self.effective.startswith(("src/", "tools/"))


def load_unit(abspath: str) -> Unit:
    with open(abspath, encoding="utf-8") as f:
        text = f.read()
    rel = os.path.relpath(abspath, REPO).replace(os.sep, "/")
    unit = Unit(path=rel, text=text, raw_lines=text.splitlines())
    unit.effective = rel
    for line in unit.raw_lines[:5]:
        m = TREAT_AS.search(line)
        if m:
            unit.effective = m.group(1)
            break
    unit.scopes = cppast.parse_file(rel, text)
    for sc in unit.scopes:
        unit.scope_by_body[id(sc.body)] = sc
    return unit


# --- taint: values data-dependent on the rank -------------------------

def _param_names(params_text: str) -> list[str]:
    names = []
    for piece in params_text.split(","):
        ids = IDENT.findall(piece)
        if ids:
            names.append(ids[-1])
    return names


def _has_rank_call(elements: list) -> bool:
    return any(c.name == "rank" and not c.args
               for c in cppast.iter_calls(elements, skip_lambda_bodies=True))


def _expr_tainted(elements: list, tainted: set[str]) -> bool:
    for t in cppast.iter_tokens(elements, skip_lambda_bodies=True):
        if t.kind == "id" and t.text in tainted:
            return True
    return _has_rank_call(elements)


def compute_taint(scope: cppast.Scope, taint_of: dict[int, set[str]]) -> set[str]:
    """Identifiers in `scope` holding rank-dependent values: the rank_
    member convention, rank-named parameters, captured tainted locals of
    enclosing scopes, and anything assigned from a tainted expression."""
    tainted = {"rank_"}
    for name in _param_names(scope.params_text):
        if name in RANK_PARAMS:
            tainted.add(name)
    p = scope.parent
    while p is not None:
        tainted |= taint_of.get(id(p), set())
        p = p.parent
    for _ in range(4):  # fixpoint over chained assignments
        grew = False
        for site in scope.sites:
            if site.stmt.kind != "expr":
                continue
            for name, rhs in _assignments(site.stmt.elements):
                if name not in tainted and _expr_tainted(rhs, tainted):
                    tainted.add(name)
                    grew = True
        if not grew:
            break
    return tainted


def _assignments(elements: list):
    """Yields (lhs-name, rhs-elements) for `x = rhs`, `T x(rhs)`, `T x{rhs}`."""
    for j, e in enumerate(elements):
        if isinstance(e, cppast.Tok) and e.text == "=" and j > 0:
            lhs = elements[j - 1]
            if isinstance(lhs, cppast.Tok) and lhs.kind == "id":
                yield lhs.text, elements[j + 1:]
            return
    for j, e in enumerate(elements):
        if (isinstance(e, cppast.Tok) and e.kind == "id" and 0 < j < len(elements) - 1):
            nxt = elements[j + 1]
            prev = elements[j - 1]
            if (isinstance(nxt, cppast.Grp) and nxt.open in "({"
                    and (isinstance(prev, cppast.Tok)
                         and (prev.kind == "id" or prev.text in (">", "&", "*")))):
                yield e.text, nxt.items
                return


# --- the analyzer -----------------------------------------------------

class Analyzer:
    def __init__(self, units: list[Unit]):
        self.units = units
        self.findings: list[Finding] = []
        self.taint_of: dict[int, set[str]] = {}
        self.fn_scopes: dict[str, list[tuple[Unit, cppast.Scope]]] = {}
        for u in units:
            for sc in u.scopes:
                if sc.kind == "function":
                    self.fn_scopes.setdefault(sc.name, []).append((u, sc))
                self.taint_of[id(sc)] = compute_taint(sc, self.taint_of)
        self.collective_wrappers = self._find_wrappers()

    def _find_wrappers(self) -> set[str]:
        """One-level interprocedural step: function names defined exactly
        once in the analyzed universe whose body unconditionally performs
        a collective. Ambiguous names (defined more than once, e.g. the
        serial and distributed `sample`) are excluded — a wrapper set
        with false members would turn into false deadlock reports."""
        wrappers: set[str] = set()
        for name, defs in self.fn_scopes.items():
            if len(defs) != 1 or name in COLLECTIVES or name in TRANSPORT_WRAPPERS:
                continue
            _, sc = defs[0]
            for site in sc.sites:
                if site.stmt.kind not in ("expr", "jump"):
                    continue
                if any(ci.kind in ("if", "switch") for ci in site.ctx):
                    continue
                if any(c.name in COLLECTIVES
                       for c in cppast.iter_calls(site.stmt.elements)):
                    wrappers.add(name)
                    break
        return wrappers

    def emit(self, rule: str, unit: Unit, line: int, message: str, hint: str):
        self.findings.append(Finding(rule, unit.path, line, message, hint))

    def run(self, rules: set[str]) -> list[Finding]:
        order = [
            ("collective-divergence", self.check_collective_divergence),
            ("p2p-unmatched", self.check_p2p_matching),
            ("p2p-sendrecv", self.check_p2p_sendrecv),
            ("p2p-tag-collision", self.check_tag_collision),
            ("fault-site", self.check_fault_site),
            ("atomic-order", self.check_atomic_order),
            ("span-discipline", self.check_span_discipline),
            ("submit-closure", self.check_submit_closures),
        ]
        for rule, fn in order:
            if rule in rules:
                fn()
        self.findings.sort(key=lambda f: (f.file, f.line, f.rule))
        return self.findings

    # -- helpers -------------------------------------------------------

    def _site_calls(self, scope: cppast.Scope):
        for site in scope.sites:
            for call in cppast.iter_calls(site.stmt.elements):
                yield site, call

    def _is_p2p(self, call: cppast.Call, unit: Unit) -> bool:
        if call.name not in P2P:
            return False
        # Free functions named send/recv unrelated to Comm exist in the
        # wild; require an object receiver except inside the cluster
        # runtime itself, where members call siblings unqualified.
        return bool(call.recv) or unit.effective.startswith("src/cluster/")

    @staticmethod
    def _tag_of(call: cppast.Call) -> str:
        idx = TAG_ARG[call.name]
        if len(call.args) > idx and call.args[idx]:
            return re.sub(r"\s+", "", cppast.text_of(call.args[idx]))
        return "0"

    @staticmethod
    def _peer_of(call: cppast.Call) -> str:
        if call.args and call.args[0]:
            return re.sub(r"\s+", "", cppast.text_of(call.args[0]))
        return ""

    # -- rule: collective-divergence -----------------------------------

    def check_collective_divergence(self):
        for unit in self.units:
            for scope in unit.scopes:
                tainted = self.taint_of[id(scope)]
                for site, call in self._site_calls(scope):
                    if not (call.name in COLLECTIVES
                            or call.name in self.collective_wrappers):
                        continue
                    if call.name in COLLECTIVES and not call.recv \
                            and not unit.effective.startswith("src/"):
                        continue  # free fn named e.g. sync() in a driver
                    for ci in site.ctx:
                        if ci.cond is None:
                            continue
                        if not _expr_tainted([ci.cond], tainted):
                            continue
                        if ci.kind == "after-exit":
                            what = (f"follows a rank-dependent early "
                                    f"{ci.jump_word} (line {ci.line})")
                        else:
                            what = (f"is reached only under a rank-dependent "
                                    f"{ci.kind} condition (line {ci.line})")
                        self.emit(
                            "collective-divergence", unit, call.line,
                            f"collective '{call.name}' {what}; ranks that "
                            f"skip it deadlock the ones that arrive",
                            "make the condition rank-uniform or hoist the "
                            "collective so every rank executes it")
                        break

    # -- rules: p2p matching / sendrecv / tag collision ----------------

    def _p2p_records(self, unit: Unit, scope: cppast.Scope):
        for site, call in self._site_calls(scope):
            if self._is_p2p(call, unit):
                yield site, call

    def check_p2p_matching(self):
        for unit in self.units:
            for scope in unit.scopes:
                if scope.name in TRANSPORT_WRAPPERS:
                    continue
                sends, recvs = [], []
                for _, call in self._p2p_records(unit, scope):
                    if call.name == "sendrecv":
                        continue  # self-matched by construction
                    (sends if call.name.startswith("send") else recvs).append(call)
                if not sends and not recvs:
                    continue
                send_tags = {self._tag_of(c) for c in sends}
                recv_tags = {self._tag_of(c) for c in recvs}
                for c in sends:
                    if self._tag_of(c) not in recv_tags:
                        self.emit(
                            "p2p-unmatched", unit, c.line,
                            f"'{c.name}' with tag {self._tag_of(c)} has no "
                            f"matching recv in this scope",
                            "pair it with a recv on the receiving rank's path "
                            "of the same job (tags must agree), use sendrecv "
                            "for symmetric exchanges, or waive with the "
                            "cross-job protocol spelled out")
                for c in recvs:
                    if self._tag_of(c) not in send_tags:
                        self.emit(
                            "p2p-unmatched", unit, c.line,
                            f"'{c.name}' with tag {self._tag_of(c)} has no "
                            f"matching send in this scope",
                            "pair it with a send on the sending rank's path "
                            "of the same job (tags must agree), use sendrecv "
                            "for symmetric exchanges, or waive with the "
                            "cross-job protocol spelled out")

    def check_p2p_sendrecv(self):
        for unit in self.units:
            for scope in unit.scopes:
                if scope.name in TRANSPORT_WRAPPERS:
                    continue
                self._sendrecv_walk(unit, scope, scope.stmts)

    def _sendrecv_walk(self, unit: Unit, scope: cppast.Scope, stmts: list):
        for a, b in zip(stmts, stmts[1:]):
            sa = self._sole_p2p(unit, a)
            sb = self._sole_p2p(unit, b)
            if (sa is not None and sb is not None
                    and sa.name.startswith("send") and sb.name.startswith("recv")
                    and self._peer_of(sa) == self._peer_of(sb)
                    and self._tag_of(sa) == self._tag_of(sb)):
                self.emit(
                    "p2p-sendrecv", unit, sa.line,
                    f"send immediately followed by recv to the same peer "
                    f"({self._peer_of(sa)}, tag {self._tag_of(sa)}) — a "
                    f"head-to-head deadlock under a rendezvous transport",
                    "use Comm::sendrecv, which stays correct regardless of "
                    "the transport's buffering")
        for st in stmts:
            for kids in (st.children, st.else_children):
                if kids:
                    self._sendrecv_walk(unit, scope, kids)

    def _sole_p2p(self, unit: Unit, st: cppast.Stmt):
        if st.kind != "expr":
            return None
        calls = [c for c in cppast.iter_calls(st.elements) if self._is_p2p(c, unit)]
        return calls[0] if len(calls) == 1 else None

    def check_tag_collision(self):
        for unit in self.units:
            if unit.effective.startswith("src/cluster/"):
                continue  # the runtime's own tags ARE the reserved range
            for scope in unit.scopes:
                for _, call in self._p2p_records(unit, scope):
                    tag = self._tag_of(call)
                    if "kCollectiveTag" in tag or tag in ("-7771", "-7772"):
                        self.emit(
                            "p2p-tag-collision", unit, call.line,
                            f"'{call.name}' uses reserved tag {tag} — "
                            f"collides with collective-internal traffic",
                            "tags at or below kCollectiveTag (-7771) belong "
                            "to the Comm collectives; use a non-negative "
                            "application tag")

    # -- rule: fault-site ----------------------------------------------

    def check_fault_site(self):
        for unit in self.units:
            if not unit.effective.startswith("src/"):
                continue  # CONTRIBUTING rule covers library code
            for scope in unit.scopes:
                if scope.name in TRANSPORT_WRAPPERS:
                    continue
                fp_lines = [c.line for _, c in self._site_calls(scope)
                            if c.name == "fault_point"]
                for _, call in self._p2p_records(unit, scope):
                    if any(line <= call.line for line in fp_lines):
                        continue
                    self.emit(
                        "fault-site", unit, call.line,
                        f"communication call '{call.name}' has no preceding "
                        f"fault_point in this scope — the fault campaign "
                        f"cannot exercise this path",
                        'add cluster::fault_point("<layer>.<operation>", '
                        'rank) before the first communication call, document '
                        'it in the src/cluster/fault.hpp site table, and '
                        'cover it in tools/fault_campaign (CONTRIBUTING)')

    # -- rule: atomic-order --------------------------------------------

    @staticmethod
    def _obj_key(call: cppast.Call) -> str:
        ids = IDENT.findall(call.recv)
        return ids[-1] if ids else ""

    @staticmethod
    def _order_in(args: list, marker: str) -> bool:
        for arg in args:
            toks = [t.text for t in cppast.iter_tokens(arg)]
            if f"memory_order_{marker}" in toks:
                return True
            if "memory_order" in toks and marker in toks:
                return True
        return False

    def check_atomic_order(self):
        releases: dict[str, tuple[str, int]] = {}
        loads: list[tuple[str, Unit, int]] = []
        for unit in self.units:
            for scope in unit.scopes:
                for _, call in self._site_calls(scope):
                    if not call.recv or call.sep not in (".", "->"):
                        continue
                    if call.name in ("store", "exchange") \
                            and self._order_in(call.args, "release"):
                        releases.setdefault(self._obj_key(call),
                                            (unit.path, call.line))
                    elif call.name == "load" \
                            and self._order_in(call.args, "relaxed"):
                        loads.append((self._obj_key(call), unit, call.line))
        for obj, unit, line in loads:
            if obj and obj in releases:
                rfile, rline = releases[obj]
                self.emit(
                    "atomic-order", unit, line,
                    f"relaxed load of '{obj}', but its writers publish with "
                    f"memory_order_release ({rfile}:{rline}) — the load is "
                    f"not guaranteed to see the released object's contents",
                    "load with std::memory_order_acquire to pair with the "
                    "release store")

    # -- rule: span-discipline -----------------------------------------

    _SPAN_DIRS = ("src/engine/", "src/sched/", "src/cluster/")

    def _span_evidence(self, scope: cppast.Scope) -> bool:
        for t in cppast.iter_tokens(scope.body.items, skip_lambda_bodies=True):
            if t.kind == "id" and t.text == "Span":
                return True
        return any(c.name in ("instant", "emit_interval")
                   for _, c in self._site_calls(scope))

    def check_span_discipline(self):
        for unit in self.units:
            if not unit.effective.startswith(self._SPAN_DIRS):
                continue
            for scope in unit.scopes:
                counters = [c for _, c in self._site_calls(scope)
                            if c.name == "counter_add"]
                if not counters:
                    continue
                covered = False
                sc = scope
                while sc is not None:
                    if self._span_evidence(sc):
                        covered = True
                        break
                    sc = sc.parent
                if covered:
                    continue
                for c in counters:
                    self.emit(
                        "span-discipline", unit, c.line,
                        f"counter emitted in '{scope.name}' outside any obs "
                        f"span — the metric lands in no traceable context",
                        "open an obs::Span at the entry point, or record an "
                        "obs::instant(...) marking the event the counter "
                        "belongs to")

    # -- rule: submit-closure ------------------------------------------

    _UNSAFE_HINT = ("submit/run closures execute on rank threads where a "
                    "throw unwinds through abort/recovery — use "
                    "std::lock_guard/unique_lock and containers so "
                    "everything acquired releases itself")

    def check_submit_closures(self):
        for unit in self.units:
            for scope in unit.scopes:
                for _, call in self._site_calls(scope):
                    if call.name not in ("submit", "run"):
                        continue
                    for arg in call.args:
                        for lam in self._lambdas_in(arg, unit):
                            self._check_closure(unit, lam, set())

    def _lambdas_in(self, elements: list, unit: Unit):
        for e in elements:
            if isinstance(e, cppast.Grp):
                if e.is_lambda_body and id(e) in unit.scope_by_body:
                    yield unit.scope_by_body[id(e)]
                else:
                    yield from self._lambdas_in(e.items, unit)

    def _check_closure(self, unit: Unit, scope: cppast.Scope,
                       visited: set[int], via: str = ""):
        if id(scope) in visited:
            return
        visited.add(id(scope))
        where = f" (via helper '{via}')" if via else ""
        for _, call in self._site_calls(scope):
            if call.name in ("lock", "unlock") and call.sep in (".", "->"):
                self.emit("submit-closure", unit, call.line,
                          f"bare .{call.name}() in a rank closure{where}",
                          self._UNSAFE_HINT)
            elif call.name in ("malloc", "free") and not call.recv:
                self.emit("submit-closure", unit, call.line,
                          f"{call.name}() in a rank closure{where} — "
                          f"use containers", self._UNSAFE_HINT)
            elif not via and not call.recv and call.name in self.fn_scopes:
                defs = self.fn_scopes[call.name]
                same_file = [sc for u2, sc in defs if u2 is unit]
                for helper in same_file:
                    self._check_closure(unit, helper, visited, via=call.name)
        toks = list(cppast.iter_tokens(scope.body.items,
                                       skip_lambda_bodies=False))
        for j, t in enumerate(toks):
            if t.kind == "id" and t.text == "new" and j + 1 < len(toks) \
                    and toks[j + 1].kind == "id":
                self.emit("submit-closure", unit, t.line,
                          f"naked new in a rank closure{where} — leaks when "
                          f"the job throws", self._UNSAFE_HINT)
        # Lambdas nested in the closure run on the same rank thread.
        for child_unit_scope in unit.scopes:
            if child_unit_scope.parent is scope and not via:
                self._check_closure(unit, child_unit_scope, visited)


# --- waivers ----------------------------------------------------------

def apply_waivers(units: dict[str, Unit], findings: list[Finding]) -> list[Finding]:
    out = []
    for f in findings:
        unit = units[f.file]
        waiver = None
        for line in (f.line, f.line - 1):
            if 1 <= line <= len(unit.raw_lines):
                m = ALLOW.search(unit.raw_lines[line - 1])
                if m and m.group(1) == f.rule:
                    waiver = m.group(2).strip()
                    break
        if waiver is None:
            out.append(f)
        elif not waiver:
            out.append(Finding(f.rule, f.file, f.line,
                               "waiver without a reason", f.hint))
        else:
            out.append(Finding(f.rule, f.file, f.line, f.message, f.hint,
                               waived=True, reason=waiver))
    return out


# --- file discovery ---------------------------------------------------

def _want(path: str) -> bool:
    return path.endswith((".cpp", ".hpp"))


def _is_fixture(path: str) -> bool:
    return FIXTURE_DIR in path


def files_from_compile_db(db_path: str) -> list[str]:
    with open(db_path, encoding="utf-8") as f:
        db = json.load(f)
    files = set()
    for entry in db:
        p = entry["file"]
        if not os.path.isabs(p):
            p = os.path.normpath(os.path.join(entry.get("directory", ""), p))
        p = os.path.realpath(p)
        if p.startswith(os.path.realpath(REPO) + os.sep) and _want(p) \
                and not _is_fixture(p):
            files.add(p)
    # Headers are not TUs; the protocol lives in cluster.hpp and friends,
    # so sweep them in from the same roots the db's TUs cover.
    for d in ("src",):
        root = os.path.join(REPO, d)
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if name.endswith(".hpp"):
                    files.add(os.path.realpath(os.path.join(dirpath, name)))
    return sorted(files)


def files_from_paths(paths: list[str]) -> list[str]:
    files = []
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(REPO, p)
        if os.path.isdir(ap):
            for dirpath, _, names in os.walk(ap):
                for name in sorted(names):
                    full = os.path.join(dirpath, name)
                    if _want(full) and not _is_fixture(full):
                        files.append(full)
        elif os.path.isfile(ap):
            files.append(ap)  # explicit file: fixtures allowed
        else:
            raise FileNotFoundError(p)
    return sorted(set(files))


# --- driver -----------------------------------------------------------

def analyze(files: list[str], rules: set[str]) -> tuple[list[Finding], int]:
    units = [load_unit(f) for f in files]
    analyzer = Analyzer(units)
    findings = analyzer.run(rules)
    findings = apply_waivers({u.path: u for u in units}, findings)
    return findings, len(units)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("-p", "--build", metavar="DIR",
                    help="build dir containing compile_commands.json")
    ap.add_argument("--compile-db", metavar="FILE",
                    help="explicit compile_commands.json path")
    ap.add_argument("--paths", nargs="+", metavar="PATH",
                    help="files/dirs to analyze (overrides the compile db)")
    ap.add_argument("--rules", nargs="+", choices=sorted(RULES),
                    metavar="RULE", help="subset of rules to run "
                    f"(default: all of {', '.join(sorted(RULES))})")
    ap.add_argument("--json", metavar="FILE",
                    help="also write findings as JSON")
    ap.add_argument("--frontend", choices=["auto", "builtin", "libclang"],
                    default="auto")
    args = ap.parse_args(argv)

    if args.frontend == "libclang":
        try:
            import clang.cindex  # noqa: F401
        except ImportError:
            print("qc-analyze: error: --frontend libclang requires the clang "
                  "Python bindings (python3-clang + libclang), which are not "
                  "installed; the builtin structural frontend is the "
                  "supported default", file=sys.stderr)
            return 2
        print("qc-analyze: error: the libclang frontend is gated off until "
              "the bindings are part of the toolchain image; run with "
              "--frontend builtin", file=sys.stderr)
        return 2

    try:
        if args.paths:
            files = files_from_paths(args.paths)
        else:
            db = args.compile_db
            if db is None and args.build:
                db = os.path.join(args.build, "compile_commands.json")
            if db is not None:
                if not os.path.isfile(db):
                    print(f"qc-analyze: error: {db} not found — configure "
                          f"with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON",
                          file=sys.stderr)
                    return 2
                files = files_from_compile_db(db)
            else:
                files = files_from_paths(
                    [d for d in DEFAULT_DIRS
                     if os.path.isdir(os.path.join(REPO, d))])
    except FileNotFoundError as e:
        print(f"qc-analyze: error: no such path: {e}", file=sys.stderr)
        return 2

    rules = set(args.rules) if args.rules else set(RULES)
    findings, n_units = analyze(files, rules)

    errors = [f for f in findings if not f.waived]
    waived = [f for f in findings if f.waived]
    for f in waived:
        print(f"note: {f.file}:{f.line}: waived [{f.rule}]: {f.reason}")
    for f in errors:
        print(f"error: {f.file}:{f.line}: [{f.rule}] {f.message}")
        print(f"    hint: {f.hint}")

    if args.json:
        payload = {
            "findings": [vars(f) for f in findings],
            "summary": {"errors": len(errors), "waived": len(waived),
                        "files": n_units,
                        "rules": sorted(rules)},
        }
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")

    if errors:
        print(f"\nqc-analyze: {len(errors)} finding(s) across {n_units} files")
        return 1
    print(f"qc-analyze: clean ({n_units} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
