// Standalone plan verifier — sched::verify_plan from the command line.
//
// Builds a workload circuit, runs it through the cache-blocked and/or
// distributed scheduler, and verifies every invariant the debug builds
// check automatically (coverage, bijective remaps, chunk budgets, byte
// conservation — see src/sched/verify_plan.hpp). Works in ANY build
// type: verification is unconditional here, so a Release tree can still
// audit the plans it would execute.
//
// --corrupt deliberately breaks the plan after scheduling and expects
// verification to FAIL — the same negative paths test_verify_plan.cpp
// pins down, exposed for manual poking:
//
//   verify_plan --circuit qft --qubits 20
//   verify_plan --mode dist --qubits 16 --local-qubits 12
//   verify_plan --corrupt drop-op          # must report CAUGHT
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

#include "circuit/builders.hpp"
#include "common/rng.hpp"
#include "fuse/fusion.hpp"
#include "sched/dist_schedule.hpp"
#include "sched/verify_plan.hpp"

namespace {

struct Args {
  std::string circuit = "random";
  std::string mode = "both";
  std::string corrupt = "none";
  qc::qubit_t qubits = 12;
  std::size_t gates = 200;
  qc::qubit_t chunk_width = 0;    // 0 = auto
  qc::qubit_t local_qubits = 0;   // 0 = qubits - 3
  std::uint64_t seed = 1;
};

[[noreturn]] void usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: verify_plan [options]\n"
               "  --circuit qft|random|entangle   workload (default random)\n"
               "  --mode blocked|dist|both        which scheduler(s) to verify\n"
               "  --qubits N                      register size (default 12)\n"
               "  --gates G                       random-circuit length (default 200)\n"
               "  --chunk-width L                 blocked chunk width, 0 = auto\n"
               "  --local-qubits NL               dist local qubits, 0 = N - 3\n"
               "  --seed S                        random-circuit seed\n"
               "  --corrupt none|drop-op|dup-swap|width|perm\n"
               "                                  break the plan; verification must catch it\n");
  std::exit(code);
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") usage(0);
    if (i + 1 >= argc) usage(2);
    const std::string val = argv[++i];
    if (flag == "--circuit") a.circuit = val;
    else if (flag == "--mode") a.mode = val;
    else if (flag == "--corrupt") a.corrupt = val;
    else if (flag == "--qubits") a.qubits = static_cast<qc::qubit_t>(std::stoul(val));
    else if (flag == "--gates") a.gates = std::stoul(val);
    else if (flag == "--chunk-width") a.chunk_width = static_cast<qc::qubit_t>(std::stoul(val));
    else if (flag == "--local-qubits") a.local_qubits = static_cast<qc::qubit_t>(std::stoul(val));
    else if (flag == "--seed") a.seed = std::stoull(val);
    else usage(2);
  }
  return a;
}

qc::circuit::Circuit build_circuit(const Args& a) {
  if (a.circuit == "qft") return qc::circuit::qft(a.qubits);
  if (a.circuit == "entangle") return qc::circuit::entangle(a.qubits);
  if (a.circuit == "random") {
    qc::Rng rng(a.seed);
    return qc::circuit::random_circuit(a.qubits, a.gates, rng);
  }
  usage(2);
}

void corrupt_blocked(qc::sched::BlockedPlan& plan, const std::string& kind) {
  using qc::sched::PlanItem;
  if (kind == "drop-op") {
    // Delete one scheduled op: coverage must notice the gap.
    for (auto& item : plan.items) {
      if (item.kind == PlanItem::Kind::Sweep && !item.ops.empty()) {
        item.ops.pop_back();
        return;
      }
    }
    std::fprintf(stderr, "verify_plan: no sweep op to drop\n");
    std::exit(2);
  }
  if (kind == "dup-swap") {
    // Repeat a position inside a remap: no longer a bijection.
    for (auto& item : plan.items) {
      if (item.kind == PlanItem::Kind::Remap && !item.swaps.empty()) {
        item.swaps.push_back({item.swaps.front()[0], static_cast<qc::qubit_t>(plan.n - 1)});
        return;
      }
    }
    std::fprintf(stderr, "verify_plan: plan has no remap to corrupt (try --chunk-width 4)\n");
    std::exit(2);
  }
  if (kind == "width") {
    plan.chunk_width = static_cast<qc::qubit_t>(plan.n + 1);
    return;
  }
  if (kind == "perm") {
    // Append an un-restored exchange: the plan no longer ends in
    // logical qubit order.
    PlanItem item;
    item.kind = PlanItem::Kind::Remap;
    item.swaps = {{qc::qubit_t{0}, static_cast<qc::qubit_t>(plan.n - 1)}};
    plan.items.push_back(std::move(item));
    return;
  }
  usage(2);
}

/// Runs one verification, reporting PASS/FAIL (or CAUGHT when a
/// corruption was requested and detected). Returns the process exit
/// contribution: 0 on the expected outcome, 1 otherwise.
int report(const char* label, bool corrupted, const std::function<void()>& verify) {
  try {
    verify();
  } catch (const qc::sched::PlanError& e) {
    if (corrupted) {
      std::printf("%-8s CAUGHT  %s\n", label, e.what());
      return 0;
    }
    std::printf("%-8s FAIL    %s\n", label, e.what());
    return 1;
  }
  if (corrupted) {
    std::printf("%-8s FAIL    corruption was not detected\n", label);
    return 1;
  }
  std::printf("%-8s PASS\n", label);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  const qc::circuit::Circuit c = build_circuit(a);
  const bool corrupted = a.corrupt != "none";
  int rc = 0;

  if (a.mode == "blocked" || a.mode == "both") {
    qc::sched::ScheduleOptions opts;
    opts.chunk_width = a.chunk_width;
    auto plan = qc::sched::schedule(qc::fuse::fuse_circuit(c, {}), opts);
    std::printf("%s\n", plan.to_string().c_str());
    if (corrupted) corrupt_blocked(plan, a.corrupt);
    rc |= report("blocked", corrupted,
                 [&] { qc::sched::verify_plan(plan, opts.cache_bytes); });
  }

  if (a.mode == "dist" || a.mode == "both") {
    const qc::qubit_t nl =
        a.local_qubits != 0 ? a.local_qubits
                            : static_cast<qc::qubit_t>(a.qubits > 3 ? a.qubits - 3 : 1);
    auto plan = qc::sched::dist_schedule(c, nl, {});
    std::printf("%s\n", plan.to_string().c_str());
    if (corrupted && a.corrupt == "perm" && !plan.items.empty()) {
      // Same corruption at cluster level: an extra, never-undone exchange.
      qc::sched::DistPlanItem item;
      item.kind = qc::sched::DistPlanItem::Kind::Exchange;
      item.swaps = {{qc::qubit_t{0}, static_cast<qc::qubit_t>(plan.n - 1)}};
      plan.items.push_back(std::move(item));
      rc |= report("dist", true, [&] { qc::sched::verify_plan(plan); });
    } else if (corrupted) {
      // Corrupt the first local segment through the blocked corruptors.
      bool done = false;
      for (auto& item : plan.items) {
        if (item.kind == qc::sched::DistPlanItem::Kind::Local) {
          corrupt_blocked(item.local, a.corrupt);
          done = true;
          break;
        }
      }
      if (!done) {
        std::fprintf(stderr, "verify_plan: dist plan has no local segment to corrupt\n");
        return 2;
      }
      rc |= report("dist", true, [&] { qc::sched::verify_plan(plan); });
    } else {
      rc |= report("dist", false, [&] { qc::sched::verify_plan(plan); });
    }
  }

  return rc;
}
